package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"conprobe/internal/clocksync"
	"conprobe/internal/cluster"
	"conprobe/internal/obs"
	"conprobe/internal/service"
	"conprobe/internal/simnet"
)

// Client implements service.Service against an httpapi server, so the
// probing stack can measure a service across a real network.
//
// Against a replicated cluster, writes automatically follow the
// leader: a 421 refusal is retried once against the X-Cluster-Leader
// hint, and when the contacted node is simply gone (the leader was
// killed), the peer set given to SetPeers is polled for whoever won
// the election.
//
// Reads default to the same pinned-to-base behavior — follower reads
// are the externally observable consistency surface the probe exists
// to measure. SetReadMode switches them to the cluster's linearizable
// read endpoint instead, and those reads follow the leader exactly
// like writes do: latching onto a deposed leader and reading its stale
// replica forever is the failure mode the failover path exists to
// prevent.
type Client struct {
	base string
	name string
	hc   *http.Client

	mu  sync.RWMutex
	ctx context.Context // bound campaign context; nil means Background

	// peers are alternate cluster node URLs writes may fail over to;
	// writeTarget is the currently believed leader ("" = base).
	peers       []string
	writeTarget string
	redirects   RedirectStats

	// readMode routes reads: local (default) pins GET /posts to base;
	// lease/quorum go to /cluster/read on the latched leader. A 404
	// from a standalone server sets readDegraded, falling back to local
	// permanently instead of 404ing every probe.
	readMode     cluster.ReadMode
	readDegraded bool
	readStats    ReadStats

	metrics clientMetrics
}

// RedirectStats counts write failovers: RedirectedWrites is how many
// writes the first-contact node refused (421) or could not take
// (transport error with peers configured); RedirectRetriesOK is how
// many of those retries then succeeded on the discovered leader.
type RedirectStats struct {
	RedirectedWrites  int
	RedirectRetriesOK int
}

// ReadStats counts cluster reads by the mode that actually vouched for
// them (the server's X-Read-Mode answer: a stale lease silently
// upgrades to a quorum round) plus read failovers, and records whether
// the client degraded to local reads against a standalone server.
type ReadStats struct {
	Local, Lease, Quorum int
	RedirectedReads      int
	RedirectRetriesOK    int
	Degraded             bool
}

// opMetrics counts one operation kind's requests and errors.
type opMetrics struct {
	reqs, errs *obs.Counter
}

func (m opMetrics) done(err error) {
	m.reqs.Inc()
	if err != nil {
		m.errs.Inc()
	}
}

// clientMetrics holds per-operation request/error counters, labeled by
// op. Handles are always non-nil (NewClient binds them to a nil scope).
type clientMetrics struct {
	write, read, reset, timeProbe opMetrics
}

func newClientMetrics(sc *obs.Scope) clientMetrics {
	op := func(name string) opMetrics {
		osc := sc.With("op", name)
		return opMetrics{
			reqs: osc.Counter("requests_total", "HTTP requests issued, by operation."),
			errs: osc.Counter("errors_total", "HTTP requests that failed, by operation."),
		}
	}
	return clientMetrics{
		write:     op("write"),
		read:      op("read"),
		reset:     op("reset"),
		timeProbe: op("time"),
	}
}

// Instrument registers the client's request/error counters under sc.
// Call before the first request; a nil scope (the default) leaves the
// client on live unregistered metrics.
func (c *Client) Instrument(sc *obs.Scope) {
	c.mu.Lock()
	c.metrics = newClientMetrics(sc)
	c.mu.Unlock()
}

var _ service.Service = (*Client)(nil)

// NewClient targets the API at baseURL (e.g. "http://host:8080"). A nil
// httpClient uses a default with a 30s timeout.
func NewClient(baseURL, name string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("httpapi: parse base url: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("httpapi: base url %q needs scheme and host", baseURL)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	if name == "" {
		name = "remote"
	}
	return &Client{base: u.String(), name: name, hc: httpClient, metrics: newClientMetrics(nil)}, nil
}

// Name returns the client-side service label.
func (c *Client) Name() string { return c.name }

// SetPeers registers the other cluster nodes' base URLs. With peers
// set, a write whose target is unreachable polls them for the current
// leader and retries there once; without peers only explicit 421
// leader hints are followed.
func (c *Client) SetPeers(peers []string) {
	c.mu.Lock()
	c.peers = append([]string(nil), peers...)
	c.mu.Unlock()
}

// RedirectStats reports how many writes failed over to another node
// and how many of those retries succeeded.
func (c *Client) RedirectStats() RedirectStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.redirects
}

// SetReadMode selects the consistency level reads are issued at.
// ReadLocal (the default) keeps reads pinned to the client's own base
// node via GET /posts; ReadLease and ReadQuorum go through GET
// /cluster/read on the current leader, following leader hints on
// refusal.
func (c *Client) SetReadMode(mode cluster.ReadMode) {
	c.mu.Lock()
	c.readMode = mode
	c.readDegraded = false
	c.mu.Unlock()
}

// ReadStats reports the modes that served this client's reads and how
// often reads had to chase a moved leader.
func (c *Client) ReadStats() ReadStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := c.readStats
	st.Degraded = c.readDegraded
	return st
}

// BindContext binds ctx to every subsequent request the client issues:
// cancelling it aborts in-flight HTTP round trips, so a cancelled
// campaign stops mid-test instead of waiting out the transport timeout.
// Campaign runners call this once per campaign; it is safe under
// concurrent use of the client.
func (c *Client) BindContext(ctx context.Context) {
	c.mu.Lock()
	c.ctx = ctx
	c.mu.Unlock()
}

// boundCtx returns the bound campaign context, or Background.
func (c *Client) boundCtx() context.Context {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// Write publishes p via POST /posts, following the cluster leader when
// the first-contact node cannot take the write (see Client docs).
func (c *Client) Write(from simnet.Site, p service.Post) (err error) {
	defer func() { c.metrics.write.done(err) }()
	base := c.writeBase()
	err = c.writeTo(base, from, p)
	if err == nil {
		return nil
	}
	target := c.failoverTarget(err)
	if target == "" || target == base {
		return err
	}
	c.mu.Lock()
	c.redirects.RedirectedWrites++
	c.mu.Unlock()
	if rerr := c.writeTo(target, from, p); rerr == nil {
		c.mu.Lock()
		c.redirects.RedirectRetriesOK++
		c.writeTarget = target // subsequent writes go straight to the leader
		c.mu.Unlock()
		return nil
	}
	return err
}

// writeBase returns where writes currently go: the last discovered
// leader, or the client's own base before any failover.
func (c *Client) writeBase() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.writeTarget != "" {
		return c.writeTarget
	}
	return c.base
}

// writeTo issues one POST /posts against base.
func (c *Client) writeTo(base string, from simnet.Site, p service.Post) error {
	body, err := json.Marshal(PostJSON{
		ID: p.ID, Author: p.Author, Body: p.Body, DependsOn: p.DependsOn,
	})
	if err != nil {
		return fmt.Errorf("httpapi: encode post: %w", err)
	}
	req, err := http.NewRequestWithContext(c.boundCtx(), http.MethodPost, base+"/posts", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(SiteHeader, string(from))
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: write: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusCreated {
		return apiError("write", resp)
	}
	return nil
}

// failoverTarget maps a failed write to the node the retry should hit:
// a 421's explicit leader hint (polling the peers when the refusing
// node does not know who leads — a freshly deposed leader often
// doesn't), or — when the target is gone entirely and peers are
// configured — whoever the surviving peers say leads now.
// Application-level rejections (429 shed, 503 outage, 4xx) never fail
// over: the cluster answered, it just said no.
func (c *Client) failoverTarget(err error) string {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status == http.StatusMisdirectedRequest {
			if apiErr.Leader != "" {
				return apiErr.Leader
			}
			return c.discoverLeader()
		}
		return ""
	}
	return c.discoverLeader()
}

// discoverLeader polls the configured peers for the current leader,
// preferring the answer from the highest term (a deposed leader can
// briefly still claim the title). Returns "" when nobody knows.
func (c *Client) discoverLeader() string {
	c.mu.RLock()
	peers := c.peers
	c.mu.RUnlock()
	var best string
	var bestTerm uint64
	found := false
	for _, peer := range peers {
		st, err := c.clusterStatusAt(peer)
		if err != nil {
			continue
		}
		candidate := ""
		if st.Role == cluster.RoleLeader {
			candidate = peer
		} else if st.LeaderURL != "" {
			candidate = st.LeaderURL
		}
		if candidate == "" {
			continue
		}
		if !found || st.Term > bestTerm {
			best, bestTerm, found = candidate, st.Term, true
		}
	}
	return best
}

// Read lists posts: via GET /posts pinned to the client's base node in
// local mode, or via the leader's GET /cluster/read in lease/quorum
// mode (see SetReadMode).
func (c *Client) Read(from simnet.Site, reader string) (_ []service.Post, err error) {
	defer func() { c.metrics.read.done(err) }()
	c.mu.RLock()
	mode, degraded := c.readMode, c.readDegraded
	c.mu.RUnlock()
	if mode == "" || mode == cluster.ReadLocal || degraded {
		c.noteReadMode(cluster.ReadLocal)
		return c.readLocal(from, reader)
	}
	return c.readLinearizable(from, reader, mode)
}

// readLocal issues one pinned GET /posts against the client's base.
func (c *Client) readLocal(from simnet.Site, reader string) ([]service.Post, error) {
	req, err := http.NewRequestWithContext(c.boundCtx(), http.MethodGet, c.base+"/posts?reader="+url.QueryEscape(reader), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(SiteHeader, string(from))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: read: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, apiError("read", resp)
	}
	var posts []PostJSON
	if err := json.NewDecoder(resp.Body).Decode(&posts); err != nil {
		return nil, fmt.Errorf("httpapi: decode posts: %w", err)
	}
	out := make([]service.Post, len(posts))
	for i, p := range posts {
		out[i] = service.Post{
			ID: p.ID, Author: p.Author, Body: p.Body,
			DependsOn: p.DependsOn, CreatedAt: p.CreatedAt,
		}
	}
	return out, nil
}

// readLinearizable issues one GET /cluster/read against the latched
// leader, re-discovering the leader and retrying once when the latched
// node refuses (421), cannot prove leadership (503), or is gone. This
// is the read-side half of the leader latch: without the retry, a
// client latched onto a deposed leader keeps reading its frozen
// replica forever — stale data served with a straight face.
func (c *Client) readLinearizable(from simnet.Site, reader string, mode cluster.ReadMode) ([]service.Post, error) {
	base := c.writeBase()
	posts, err := c.readClusterAt(base, from, reader, mode)
	if err == nil {
		return posts, nil
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		// Standalone server: there is no /cluster/read to talk to.
		// Degrade to local reads permanently rather than 404 every probe.
		c.mu.Lock()
		c.readDegraded = true
		c.mu.Unlock()
		c.noteReadMode(cluster.ReadLocal)
		return c.readLocal(from, reader)
	}
	target := c.readFailoverTarget(err)
	if target == "" || target == base {
		return nil, err
	}
	c.mu.Lock()
	c.readStats.RedirectedReads++
	c.mu.Unlock()
	posts, rerr := c.readClusterAt(target, from, reader, mode)
	if rerr != nil {
		return nil, err
	}
	c.mu.Lock()
	c.readStats.RedirectRetriesOK++
	c.writeTarget = target // reads and writes share the leader latch
	c.mu.Unlock()
	return posts, nil
}

// readFailoverTarget is failoverTarget with one read-specific addition:
// a 503 means the node answered but could not confirm a quorum round —
// a partitioned or mid-election ex-leader — so the peers are polled
// for whoever actually leads now. (Writes treat 503 as an outage and
// never fail over; a read retried elsewhere is always safe.)
func (c *Client) readFailoverTarget(err error) string {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
		return c.discoverLeader()
	}
	return c.failoverTarget(err)
}

// clusterReadJSON is the GET /cluster/read response body; the posts
// ride in the same wire form GET /posts serves.
type clusterReadJSON struct {
	Mode  cluster.ReadMode `json:"mode"`
	Posts []PostJSON       `json:"posts"`
}

// readClusterAt issues one linearizable read against base.
func (c *Client) readClusterAt(base string, from simnet.Site, reader string, mode cluster.ReadMode) ([]service.Post, error) {
	u := base + "/cluster/read?mode=" + url.QueryEscape(string(mode)) +
		"&reader=" + url.QueryEscape(reader)
	req, err := http.NewRequestWithContext(c.boundCtx(), http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(SiteHeader, string(from))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: cluster read: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, apiError("cluster read", resp)
	}
	var body clusterReadJSON
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("httpapi: decode cluster read: %w", err)
	}
	c.noteReadMode(body.Mode)
	out := make([]service.Post, len(body.Posts))
	for i, p := range body.Posts {
		out[i] = service.Post{
			ID: p.ID, Author: p.Author, Body: p.Body,
			DependsOn: p.DependsOn, CreatedAt: p.CreatedAt,
		}
	}
	return out, nil
}

// noteReadMode tallies which mode actually served a read.
func (c *Client) noteReadMode(mode cluster.ReadMode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch mode {
	case cluster.ReadLease:
		c.readStats.Lease++
	case cluster.ReadQuorum:
		c.readStats.Quorum++
	default:
		c.readStats.Local++
	}
}

// Reset clears service state via DELETE /posts. Request and status
// errors are returned: a campaign must know when a reset did not take,
// or the previous test's posts leak into the next trace.
func (c *Client) Reset() (err error) {
	defer func() { c.metrics.reset.done(err) }()
	req, err := http.NewRequestWithContext(c.boundCtx(), http.MethodDelete, c.base+"/posts", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: reset: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return apiError("reset", resp)
	}
	return nil
}

// TimeProbe returns a clocksync.ProbeFunc that reads the server's clock
// via GET /time, for coordinator-side delta estimation.
func (c *Client) TimeProbe() clocksync.ProbeFunc {
	return func() (_ time.Time, err error) {
		defer func() { c.metrics.timeProbe.done(err) }()
		req, err := http.NewRequestWithContext(c.boundCtx(), http.MethodGet, c.base+"/time", nil)
		if err != nil {
			return time.Time{}, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return time.Time{}, fmt.Errorf("httpapi: time probe: %w", err)
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return time.Time{}, apiError("time", resp)
		}
		var t TimeJSON
		if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
			return time.Time{}, fmt.Errorf("httpapi: decode time: %w", err)
		}
		return t.Now, nil
	}
}

// ErrNoCluster reports the server runs standalone: it has no
// /cluster/status endpoint. Monitors use it to stop polling for
// replication state instead of logging 404s forever.
var ErrNoCluster = errors.New("httpapi: server is not in cluster mode")

// ClusterStatus fetches the node's replication state via GET
// /cluster/status. A standalone server yields ErrNoCluster.
func (c *Client) ClusterStatus() (*cluster.StatusJSON, error) {
	return c.clusterStatusAt(c.base)
}

func (c *Client) clusterStatusAt(base string) (*cluster.StatusJSON, error) {
	req, err := http.NewRequestWithContext(c.boundCtx(), http.MethodGet, base+"/cluster/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: cluster status: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNoCluster
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError("cluster status", resp)
	}
	var st cluster.StatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("httpapi: decode cluster status: %w", err)
	}
	return &st, nil
}

// APIError is a non-success response from the server, carrying the
// status code and any Retry-After hint so callers (the resilience
// middleware, conload) can distinguish shed/outage rejections from
// other failures and pace their retries.
type APIError struct {
	Op         string
	Status     int
	Msg        string
	RetryAfter time.Duration // 0 = no hint
	// Leader is the X-Cluster-Leader redirection target sent with a 421
	// (the contacted node is a follower); empty otherwise. conload
	// follows it during failover.
	Leader string
}

func (e *APIError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("httpapi: %s: status %d", e.Op, e.Status)
	}
	return fmt.Sprintf("httpapi: %s: status %d: %s", e.Op, e.Status, e.Msg)
}

// RetryAfterHint reports the server's Retry-After, if it sent one. The
// resilience middleware discovers this method structurally and extends
// its backoff to honor the hint.
func (e *APIError) RetryAfterHint() (time.Duration, bool) {
	return e.RetryAfter, e.RetryAfter > 0
}

// apiError converts a non-success response into an *APIError carrying
// the server's message and Retry-After hint.
func apiError(op string, resp *http.Response) error {
	e := &APIError{
		Op: op, Status: resp.StatusCode, RetryAfter: retryAfterOf(resp),
		Leader: resp.Header.Get(LeaderHeader),
	}
	var body errorJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err == nil {
		e.Msg = body.Error
	}
	return e
}

// retryAfterOf parses the Retry-After header: delay-seconds, or an HTTP
// date relative to now. Absent or unparsable yields 0 (no hint).
func retryAfterOf(resp *http.Response) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// drain discards and closes the response body so connections are reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}
