package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"conprobe/internal/resilience"
	"conprobe/internal/service"
	"conprobe/internal/simnet"
	"conprobe/internal/vtime"
)

func TestWriteDedup(t *testing.T) {
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{}))
	defer srv.Close()
	cl, err := NewClient(srv.URL, "mem", srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	p := service.Post{ID: "w1", Author: "agent1", Body: "once"}
	if err := cl.Write(simnet.Oregon, p); err != nil {
		t.Fatal(err)
	}
	// The replay is acknowledged like the original...
	if err := cl.Write(simnet.Oregon, p); err != nil {
		t.Fatalf("replayed write rejected: %v", err)
	}
	// ...but only one post exists.
	posts, err := cl.Read(simnet.Oregon, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 1 {
		t.Fatalf("replayed write duplicated: %d posts", len(posts))
	}
	var st StatsJSON
	getJSON(t, srv, "/stats", &st)
	if st.Writes != 1 || st.DedupedWrites != 1 {
		t.Fatalf("stats = %+v, want 1 write + 1 dedup", st)
	}

	// Reset clears dedup state: the same ID is a fresh post afterwards.
	if err := cl.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(simnet.Oregon, p); err != nil {
		t.Fatal(err)
	}
	posts, err = cl.Read(simnet.Oregon, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 1 {
		t.Fatalf("post-reset write produced %d posts, want 1", len(posts))
	}
}

func TestPostBodySizeLimit(t *testing.T) {
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{MaxBodyBytes: 256}))
	defer srv.Close()
	big := `{"id":"b1","author":"a","body":"` + strings.Repeat("x", 1024) + `"}`
	resp, err := srv.Client().Post(srv.URL+"/posts", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST status = %d, want 413", resp.StatusCode)
	}
	// A normal-sized post still goes through.
	small := `{"id":"s1","author":"a","body":"hi"}`
	resp2, err := srv.Client().Post(srv.URL+"/posts", "application/json", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("normal POST status = %d, want 201", resp2.StatusCode)
	}
}

// ackDropper performs each request for real but reports a transport
// error for the first n POST /posts responses — the shape of a write
// whose acknowledgment is lost after the server already applied it.
type ackDropper struct {
	inner http.RoundTripper
	mu    sync.Mutex
	drop  int
}

func (d *ackDropper) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.RoundTrip(req)
	if err != nil || req.Method != http.MethodPost || req.URL.Path != "/posts" {
		return resp, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.drop > 0 {
		d.drop--
		resp.Body.Close()
		return nil, errDroppedAck
	}
	return resp, nil
}

var errDroppedAck = &injectedError{}

func TestRetriedWriteNotDuplicated(t *testing.T) {
	// End-to-end idempotency: the server applies a write, the ack is lost
	// in transit, the resilience layer retries with the same post ID, and
	// the server dedupes — exactly one post, zero manufactured anomalies.
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{}))
	defer srv.Close()
	hc := srv.Client()
	hc.Transport = &ackDropper{inner: http.DefaultTransport, drop: 1}
	cl, err := NewClient(srv.URL, "mem", hc)
	if err != nil {
		t.Fatal(err)
	}
	rs := resilience.Wrap(cl, vtime.Real{}, resilience.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		JitterFrac:  -1,
	})
	if err := rs.Write(simnet.Oregon, service.Post{ID: "w1", Author: "agent1"}); err != nil {
		t.Fatalf("retried write failed: %v", err)
	}
	posts, err := rs.Read(simnet.Oregon, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 1 {
		t.Fatalf("retried write left %d posts, want exactly 1", len(posts))
	}
	st := rs.Stats()
	if st.Retries != 1 || st.Recovered != 1 {
		t.Fatalf("resilience stats = %+v, want 1 retry recovered", st)
	}
	var srvStats StatsJSON
	getJSON(t, srv, "/stats", &srvStats)
	if srvStats.Writes != 1 || srvStats.DedupedWrites != 1 {
		t.Fatalf("server stats = %+v, want the replay deduped", srvStats)
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
