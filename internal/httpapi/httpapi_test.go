package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"conprobe/internal/clocksync"
	"conprobe/internal/service"
	"conprobe/internal/simnet"
	"conprobe/internal/vtime"
)

// memService is a trivial strongly consistent in-memory Service for
// exercising the HTTP layer without the simulator.
type memService struct {
	mu    sync.Mutex
	posts []service.Post
}

func (m *memService) Name() string { return "mem" }

func (m *memService) Write(_ simnet.Site, p service.Post) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p.CreatedAt = time.Now()
	m.posts = append(m.posts, p)
	return nil
}

func (m *memService) Read(_ simnet.Site, _ string) ([]service.Post, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]service.Post(nil), m.posts...), nil
}

func (m *memService) Reset() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.posts = nil
	return nil
}

func newPair(t *testing.T, cfg ServerConfig) (*Client, *memService) {
	t.Helper()
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, cfg))
	t.Cleanup(srv.Close)
	cl, err := NewClient(srv.URL, "mem", srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return cl, svc
}

func TestWriteReadResetRoundTrip(t *testing.T) {
	cl, _ := newPair(t, ServerConfig{})
	if err := cl.Write(simnet.Oregon, service.Post{ID: "m1", Author: "agent1", Body: "hi"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(simnet.Tokyo, service.Post{ID: "m2", Author: "agent2"}); err != nil {
		t.Fatal(err)
	}
	posts, err := cl.Read(simnet.Ireland, "agent3")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 || posts[0].ID != "m1" || posts[1].ID != "m2" {
		t.Fatalf("read = %+v", posts)
	}
	if posts[0].Author != "agent1" || posts[0].Body != "hi" {
		t.Fatalf("fields lost: %+v", posts[0])
	}
	if posts[0].CreatedAt.IsZero() {
		t.Fatal("created_at lost in transit")
	}
	if err := cl.Reset(); err != nil {
		t.Fatal(err)
	}
	posts, err = cl.Read(simnet.Ireland, "agent3")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 0 {
		t.Fatalf("reset did not clear: %+v", posts)
	}
}

func TestWriteValidation(t *testing.T) {
	cl, _ := newPair(t, ServerConfig{})
	err := cl.Write(simnet.Oregon, service.Post{Author: "agent1"})
	if err == nil || !strings.Contains(err.Error(), "id is required") {
		t.Fatalf("err = %v, want id-required", err)
	}
}

func TestTimeProbeServesServerClock(t *testing.T) {
	fixed := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	cl, _ := newPair(t, ServerConfig{Clock: fixedClock{at: fixed}})
	probe := cl.TimeProbe()
	got, err := probe()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(fixed) {
		t.Fatalf("time = %v, want %v", got, fixed)
	}
	// And it composes with the estimator.
	res, err := clocksync.Estimate(vtime.Real{}, probe, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 3 {
		t.Fatalf("samples = %d", res.Samples)
	}
}

type fixedClock struct{ at time.Time }

func (f fixedClock) Now() time.Time                              { return f.at }
func (f fixedClock) Sleep(time.Duration)                         {}
func (f fixedClock) Since(t time.Time) time.Duration             { return f.at.Sub(t) }
func (f fixedClock) AfterFunc(time.Duration, func()) vtime.Timer { return noopTimer{} }

type noopTimer struct{}

func (noopTimer) Stop() bool { return false }

func TestRateLimiting(t *testing.T) {
	cl, _ := newPair(t, ServerConfig{RatePerSecond: 0.001, Burst: 2})
	if err := cl.Write(simnet.Oregon, service.Post{ID: "m1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(simnet.Oregon, "r"); err != nil {
		t.Fatal(err)
	}
	// Third request from the same site exceeds the burst.
	err := cl.Write(simnet.Oregon, service.Post{ID: "m2"})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v, want 429", err)
	}
	// A different site has its own bucket.
	if err := cl.Write(simnet.Tokyo, service.Post{ID: "m3"}); err != nil {
		t.Fatal(err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{}))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/posts", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp2, err := srv.Client().Post(srv.URL+"/time", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("time POST status = %d", resp2.StatusCode)
	}
}

func TestBadPostBody(t *testing.T) {
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{}))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/posts", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("not a url", "x", nil); err == nil {
		t.Fatal("bad url accepted")
	}
	if _, err := NewClient("/no-host", "x", nil); err == nil {
		t.Fatal("hostless url accepted")
	}
	cl, err := NewClient("http://example.com", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Name() != "remote" {
		t.Fatal("default name wrong")
	}
}

func TestServiceErrorSurfacesToClient(t *testing.T) {
	// A simulated service rejects unrouted sites; the HTTP layer must
	// relay the message.
	sim := vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	_ = sim
	svc := &memService{}
	srv := httptest.NewServer(NewServer(failing{svc}, ServerConfig{}))
	defer srv.Close()
	cl, err := NewClient(srv.URL, "mem", srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	werr := cl.Write(simnet.Oregon, service.Post{ID: "m1"})
	if werr == nil || !strings.Contains(werr.Error(), "injected failure") {
		t.Fatalf("err = %v", werr)
	}
	if _, rerr := cl.Read(simnet.Oregon, "r"); rerr == nil || !strings.Contains(rerr.Error(), "injected failure") {
		t.Fatalf("err = %v", rerr)
	}
}

type failing struct{ service.Service }

func (failing) Write(simnet.Site, service.Post) error { return errInjected }
func (failing) Read(simnet.Site, string) ([]service.Post, error) {
	return nil, errInjected
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected failure" }

func TestStatsEndpoint(t *testing.T) {
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{}))
	defer srv.Close()
	cl, err := NewClient(srv.URL, "mem", srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(simnet.Oregon, service.Post{ID: "m1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(simnet.Oregon, "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(simnet.Tokyo, "r"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Reset(); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Writes != 1 || st.Reads != 2 || st.Resets != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Method check.
	post, err := srv.Client().Post(srv.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status = %d", post.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	svc := &memService{}
	srv := httptest.NewServer(NewServer(svc, ServerConfig{}))
	defer srv.Close()
	cl, err := NewClient(srv.URL, "mem", srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					if err := cl.Write(simnet.Oregon, service.Post{
						ID: fmt.Sprintf("g%d-m%d", g, i), Author: "a",
					}); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := cl.Read(simnet.Tokyo, "r"); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	posts, err := cl.Read(simnet.Oregon, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 80 {
		t.Fatalf("posts = %d, want 80", len(posts))
	}
}
