package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// openAppend opens path, appends every payload, and closes the log.
func openAppend(t *testing.T, path string, payloads ...string) {
	t.Helper()
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	want := []string{"one", "", "three has spaces", strings.Repeat("x", 5000)}
	openAppend(t, path, want...)

	l, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if rep.Note != "" {
		t.Errorf("unexpected note on clean log: %q", rep.Note)
	}
	if len(rep.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(want))
	}
	for i, w := range want {
		if string(rep.Records[i]) != w {
			t.Errorf("record %d = %q, want %q", i, rep.Records[i], w)
		}
	}
	// Appends after replay must extend, not clobber.
	if err := l.Append([]byte("five")); err != nil {
		t.Fatalf("post-replay Append: %v", err)
	}
	l.Close()
	_, rep, err = Open(path, Options{})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if len(rep.Records) != len(want)+1 || string(rep.Records[len(want)]) != "five" {
		t.Fatalf("after post-replay append got %d records", len(rep.Records))
	}
}

// TestKillAtEveryOffset is the kill-at-random-offset sweep: the log is
// truncated at every possible byte length, simulating a crash after
// that many bytes reached disk. Every prefix must either replay some
// prefix of the records with at most a torn tail — never an error, and
// never a wrong or reordered record.
func TestKillAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.log")
	want := []string{"alpha", "beta-beta", "g", strings.Repeat("d", 300)}
	openAppend(t, path, want...)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(p, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		for i, r := range rep.Records {
			if i >= len(want) || string(r) != want[i] {
				t.Fatalf("cut=%d: record %d = %q, want prefix of %v", cut, i, r, want)
			}
		}
		partial := cut < len(full)
		// A cut exactly at a frame boundary (including the empty file)
		// loses whole records silently (they never hit disk) — that is
		// not a torn tail.
		complete := cut == 0
		off := 0
		for _, w := range want {
			off += frameHeader + len(w)
			if off == cut {
				complete = true
			}
		}
		if partial && !complete && rep.Note == "" {
			t.Errorf("cut=%d: mid-frame cut produced no torn-tail note", cut)
		}
		if (!partial || complete) && rep.Note != "" {
			t.Errorf("cut=%d: clean prefix produced note %q", cut, rep.Note)
		}
		// The torn tail must be truncated away: appending then replaying
		// must yield the intact prefix plus the new record.
		if err := l.Append([]byte("tail")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		n := len(rep.Records)
		l.Close()
		_, rep2, err := Open(p, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen after append: %v", cut, err)
		}
		if len(rep2.Records) != n+1 || string(rep2.Records[n]) != "tail" {
			t.Fatalf("cut=%d: after recovery+append replayed %d records", cut, len(rep2.Records))
		}
	}
}

// TestMidFileCorruption flips a byte in every record but the last and
// checks the error carries the offset of the damaged frame.
func TestMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.log")
	want := []string{"first", "second", "third"}
	openAppend(t, path, want...)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	offsets := []int64{0, int64(frameHeader + len("first"))}
	for i, frameOff := range offsets {
		p := filepath.Join(dir, fmt.Sprintf("corrupt-%d.log", i))
		damaged := append([]byte(nil), full...)
		damaged[frameOff+frameHeader] ^= 0xFF // flip a payload byte
		if err := os.WriteFile(p, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Open(p, Options{})
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("record %d: got %v, want *CorruptError", i, err)
		}
		if ce.Offset != frameOff {
			t.Errorf("record %d: offset %d, want %d", i, ce.Offset, frameOff)
		}
		if ce.Path != p {
			t.Errorf("record %d: path %q, want %q", i, ce.Path, p)
		}
	}
}

// TestCorruptLastFrameIsTorn checks damage confined to the final frame
// counts as a torn tail, not corruption.
func TestCorruptLastFrameIsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	openAppend(t, path, "keep", "lose")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-1] ^= 0xFF
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rep.Records) != 1 || string(rep.Records[0]) != "keep" {
		t.Fatalf("records = %q, want [keep]", rep.Records)
	}
	if rep.Note == "" {
		t.Error("expected a torn-tail note")
	}
}

// TestAbsurdLengthIsCorrupt checks a damaged length field is reported
// as corruption rather than read as a giant torn tail.
func TestAbsurdLengthIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	frame := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(frame, uint32(MaxRecordBytes+1))
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
}

// TestConcurrentAppends hammers one log from many goroutines; every
// record must survive a reopen exactly once. Run under -race this also
// exercises the group-commit gate.
func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	seen := make(map[string]int)
	for _, r := range rep.Records {
		seen[string(r)]++
	}
	if len(rep.Records) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			if seen[key] != 1 {
				t.Fatalf("record %q seen %d times", key, seen[key])
			}
		}
	}
}

func TestTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"a", "b"} {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if sz, err := l.Size(); err != nil || sz != int64(frameHeader+1) {
		t.Fatalf("Size = %d, %v; want %d", sz, err, frameHeader+1)
	}
	l.Close()
	_, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 1 || string(rep.Records[0]) != "c" {
		t.Fatalf("records = %q, want [c]", rep.Records)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")

	if _, ok, err := ReadSnapshot(path); err != nil || ok {
		t.Fatalf("missing snapshot: ok=%v err=%v, want false,nil", ok, err)
	}

	var synced []string
	restore := ObserveDirSync(func(d string) { synced = append(synced, d) })
	defer restore()

	if err := WriteSnapshot(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("dir syncs = %v, want [%s]", synced, dir)
	}
	got, ok, err := ReadSnapshot(path)
	if err != nil || !ok || string(got) != "v1" {
		t.Fatalf("ReadSnapshot = %q,%v,%v", got, ok, err)
	}

	// Replacement leaves no temp droppings behind.
	if err := WriteSnapshot(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = ReadSnapshot(path)
	if string(got) != "v2" {
		t.Fatalf("after replace = %q, want v2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the snapshot", len(entries))
	}
}

// TestSnapshotDamageIsCorrupt: unlike a log, a damaged snapshot has no
// salvageable prefix and must be reported, never silently dropped.
func TestSnapshotDamageIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := WriteSnapshot(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) - 1, frameHeader / 2} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := ReadSnapshot(path)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("cut=%d: got %v, want *CorruptError", cut, err)
		}
	}
}
