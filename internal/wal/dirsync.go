package wal

import (
	"sync"

	"conprobe/internal/diskfault"
)

// dirSyncObserver, when set, is called with every directory SyncDir
// fsyncs. Tests use it to assert that rename-based file replacement
// also makes the rename itself durable.
var (
	dirSyncMu       sync.Mutex
	dirSyncObserver func(dir string)
)

// ObserveDirSync installs fn as the SyncDir observer and returns a
// restore function. Test-only; the observer is called synchronously
// after a successful directory fsync.
func ObserveDirSync(fn func(dir string)) (restore func()) {
	dirSyncMu.Lock()
	prev := dirSyncObserver
	dirSyncObserver = fn
	dirSyncMu.Unlock()
	return func() {
		dirSyncMu.Lock()
		dirSyncObserver = prev
		dirSyncMu.Unlock()
	}
}

// SyncDir fsyncs the directory itself on the real filesystem. See
// SyncDirFS.
func SyncDir(dir string) error { return SyncDirFS(nil, dir) }

// SyncDirFS fsyncs the directory itself, making a preceding rename or
// create in it durable. An os.Rename persists the file contents but the
// new directory entry lives in the directory's own metadata, which has
// its own writeback; without this a power cut after rename can resurface
// the old file. Filesystems that refuse fsync on directories (some
// network mounts) return an error here; callers treat that as fatal
// because they chose durability explicitly. fsys nil means the real
// filesystem.
func SyncDirFS(fsys diskfault.FS, dir string) error {
	if fsys == nil {
		fsys = diskfault.OS
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err
	}
	dirSyncMu.Lock()
	fn := dirSyncObserver
	dirSyncMu.Unlock()
	if fn != nil {
		fn(dir)
	}
	return nil
}
