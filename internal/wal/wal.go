// Package wal implements the crash-safe binary persistence primitives
// shared by the durable store and the replicated consvc cluster: an
// append-only log of CRC32-framed records with group-committed fsync,
// and atomically replaced snapshot files written with the same
// tmp+rename+checksum discipline as the internal/checkpoint journal.
//
// Record framing: every record is [4-byte little-endian payload length]
// [4-byte little-endian IEEE CRC32 of the payload][payload]. Replay
// walks the frames sequentially; a record cut short by a crash — the
// frame extends past the end of the file, or its checksum fails on the
// very last frame — is the classic torn tail: it is dropped, noted, and
// physically truncated away so subsequent appends start from a clean
// offset. Damage anywhere before the final frame cannot be
// distinguished from data loss and is reported as a *CorruptError
// positioned by byte offset, never silently skipped.
//
// Group commit: concurrent Append calls each write their frame under
// the log's lock, then meet at the sync gate. The first appender
// through the gate fsyncs once for every frame buffered so far; the
// rest observe that a later sync already covered their record and
// return without issuing their own. Under write bursts the fsync cost
// is amortized across the batch — the classic group-commit pattern —
// while every Append still returns only after its record is durable.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// frameHeader is the per-record overhead: 4 bytes length + 4 bytes CRC.
const frameHeader = 8

// putFrameHeader writes payload's length and checksum into frame[:8].
func putFrameHeader(frame, payload []byte) {
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
}

// MaxRecordBytes bounds a single record's payload. A mid-file length
// field corrupted into a huge value would otherwise read as a plausible
// torn tail; capping record size turns it into a positioned error.
const MaxRecordBytes = 64 << 20

// CorruptError reports unrecoverable damage inside a log or snapshot
// file, positioned by the byte offset of the damaged frame.
type CorruptError struct {
	// Path is the damaged file.
	Path string
	// Offset is the byte offset of the frame that failed to decode.
	Offset int64
	// Reason describes the damage ("checksum mismatch", ...).
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record at byte offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Options configure a Log.
type Options struct {
	// NoSync skips every fsync. Benchmarks and tests that do not measure
	// durability use it; production paths must not.
	NoSync bool
}

// Replay is the outcome of reading a log back on Open.
type Replay struct {
	// Records holds every intact payload, in append order.
	Records [][]byte
	// Note reports a tolerated torn tail ("dropped torn final record at
	// byte offset N"); empty for a clean log.
	Note string
}

// Log is an append-only record log with group-committed fsync.
type Log struct {
	path   string
	nosync bool

	// mu guards the file and the append counter; appends write their
	// frame under it and release it before syncing.
	mu       sync.Mutex
	f        *os.File
	appended uint64 // records written to the file (durable or not)

	// syncMu is the group-commit gate; syncedTo is the append counter
	// value covered by the last completed fsync.
	syncMu   sync.Mutex
	syncedTo uint64
}

// Open opens (creating if absent) the log at path and replays its
// records. A torn final record is dropped, noted in the Replay, and
// truncated off the file; corruption anywhere earlier returns a
// *CorruptError and no Log.
func Open(path string, opts Options) (*Log, Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Replay{}, err
	}
	rep, valid, err := scan(f, path)
	if err != nil {
		f.Close()
		return nil, Replay{}, err
	}
	if rep.Note != "" {
		// Physically drop the torn tail so the next append starts at a
		// clean frame boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, Replay{}, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, Replay{}, err
	}
	l := &Log{path: path, nosync: opts.NoSync, f: f}
	l.appended = uint64(len(rep.Records))
	l.syncedTo = l.appended
	return l, rep, nil
}

// scan reads every frame from f, returning the replay and the byte
// offset of the end of the last intact frame.
func scan(f *os.File, path string) (Replay, int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return Replay{}, 0, err
	}
	var rep Replay
	size := int64(len(data))
	off := int64(0)
	for off < size {
		rest := size - off
		torn := func(reason string) {
			rep.Note = fmt.Sprintf("dropped torn final record at byte offset %d (%s)", off, reason)
		}
		if rest < frameHeader {
			torn("incomplete frame header")
			return rep, off, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		stored := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecordBytes {
			// A length this absurd is a damaged header, not a short write.
			return Replay{}, 0, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("record length %d exceeds limit %d", length, int64(MaxRecordBytes))}
		}
		end := off + frameHeader + length
		if end > size {
			torn("frame extends past end of file")
			return rep, off, nil
		}
		payload := data[off+frameHeader : end]
		if got := crc32.ChecksumIEEE(payload); got != stored {
			if end == size {
				// Garbage in the very last frame: a crash mid-write.
				torn(fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", stored, got))
				return rep, off, nil
			}
			return Replay{}, 0, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", stored, got)}
		}
		rec := make([]byte, length)
		copy(rec, payload)
		rep.Records = append(rep.Records, rec)
		off = end
	}
	return rep, off, nil
}

// Append writes one record and returns once it is durable (unless the
// log was opened with NoSync). Safe for concurrent use; concurrent
// appends share fsyncs through the group-commit gate.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: %s: record of %d bytes exceeds limit %d", l.path, len(payload), MaxRecordBytes)
	}
	frame := encodeFrame(payload)

	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: %s: append on closed log", l.path)
	}
	if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: appending to %s: %w", l.path, err)
	}
	l.appended++
	mine := l.appended
	l.mu.Unlock()
	return l.syncThrough(mine)
}

// syncThrough blocks until an fsync covering the mine-th append has
// completed. The appender that wins the gate syncs for the whole batch
// written so far; laggards see syncedTo has passed them and return.
func (l *Log) syncThrough(mine uint64) error {
	if l.nosync {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedTo >= mine {
		return nil // a group fsync while we waited already covered us
	}
	// Capture the batch bound before syncing: frames written after this
	// read may or may not be flushed by the fsync below, so only the
	// captured prefix is marked durable.
	l.mu.Lock()
	covered := l.appended
	f := l.f
	l.mu.Unlock()
	if f == nil {
		return fmt.Errorf("wal: %s: sync on closed log", l.path)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", l.path, err)
	}
	l.syncedTo = covered
	return nil
}

// Truncate discards every record (after a snapshot has captured them)
// and syncs the truncation.
func (l *Log) Truncate() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: %s: truncate on closed log", l.path)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if !l.nosync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing %s: %w", l.path, err)
		}
	}
	return nil
}

// Size returns the log's current byte size.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: %s: size on closed log", l.path)
	}
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the log file. Appended records remain on disk.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
