// Package wal implements the crash-safe binary persistence primitives
// shared by the durable store and the replicated consvc cluster: an
// append-only log of CRC32-framed records with group-committed fsync,
// and atomically replaced snapshot files written with the same
// tmp+rename+checksum discipline as the internal/checkpoint journal.
//
// Record framing: every record is [4-byte little-endian payload length]
// [4-byte little-endian IEEE CRC32 of the payload][payload]. Replay
// walks the frames sequentially; a record cut short by a crash — the
// frame extends past the end of the file, or its checksum fails on the
// very last frame — is the classic torn tail: it is dropped, noted, and
// physically truncated away so subsequent appends start from a clean
// offset. Damage anywhere before the final frame cannot be
// distinguished from data loss and is reported as a *CorruptError
// positioned by byte offset — or, when the caller opted into
// Quarantine, the whole damaged file is set aside as a .corrupt sidecar
// and the log reopens empty, for callers that can re-source the data
// (a cluster follower rejoins via the leader's snapshot stream).
//
// Group commit: concurrent Append calls each write their frame under
// the log's lock, then meet at the sync gate. The first appender
// through the gate fsyncs once for every frame buffered so far; the
// rest observe that a later sync already covered their record and
// return without issuing their own. Under write bursts the fsync cost
// is amortized across the batch — the classic group-commit pattern —
// while every Append still returns only after its record is durable.
//
// Fault model: every file operation goes through a diskfault.FS, so
// tests and chaos drills inject torn writes, failed fsyncs, bit flips
// and ENOSPC deterministically. A failed fsync POISONS the log — no
// later append or sync can succeed on the handle — because a kernel
// that fails a writeback may drop the dirty pages, after which a
// "successful" retry proves nothing (the fsyncgate semantics). A failed
// frame write is repaired by truncating back to the last good frame
// boundary so the log never carries a half-written frame into the next
// append; if the repair itself fails, the log poisons too.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"conprobe/internal/diskfault"
	"conprobe/internal/obs"
)

// frameHeader is the per-record overhead: 4 bytes length + 4 bytes CRC.
const frameHeader = 8

// putFrameHeader writes payload's length and checksum into frame[:8].
func putFrameHeader(frame, payload []byte) {
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
}

// MaxRecordBytes bounds a single record's payload. A mid-file length
// field corrupted into a huge value would otherwise read as a plausible
// torn tail; capping record size turns it into a positioned error.
const MaxRecordBytes = 64 << 20

// DefaultFileMode is the permission new log and snapshot files get when
// Options.Mode is zero.
const DefaultFileMode os.FileMode = 0o644

// ErrPoisoned marks a log unusable after a failed fsync (or a failed
// torn-write repair): the handle may have silently lost unsynced bytes,
// so no further append can honestly claim durability. Callers stop
// acking and recover by reopening — replay trusts only what is actually
// on disk.
var ErrPoisoned = errors.New("wal: log poisoned by storage failure")

// CorruptError reports unrecoverable damage inside a log or snapshot
// file, positioned by the byte offset of the damaged frame.
type CorruptError struct {
	// Path is the damaged file.
	Path string
	// Offset is the byte offset of the frame that failed to decode.
	Offset int64
	// Reason describes the damage ("checksum mismatch", ...).
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record at byte offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Options configure a Log.
type Options struct {
	// NoSync skips every fsync. Benchmarks and tests that do not measure
	// durability use it; production paths must not.
	NoSync bool
	// FS is the filesystem the log runs on; nil means the real one.
	// Fault drills pass a diskfault.Injector's FS.
	FS diskfault.FS
	// Mode is the permission for a newly created log file; zero means
	// DefaultFileMode.
	Mode os.FileMode
	// Quarantine survives mid-log corruption instead of refusing to
	// open: the damaged file is renamed to a .corrupt sidecar, the log
	// reopens empty, and Replay.Quarantined reports it. Only callers
	// that can re-source the lost records (cluster nodes, which rejoin
	// via the leader's snapshot-install stream) should set it; the
	// standalone durable store must not, because for it detection is the
	// last line of defense.
	Quarantine bool
	// Metrics, when non-nil, counts fsync poisonings
	// (fsync_poisoned_total) and quarantined segments
	// (wal_quarantined_segments).
	Metrics *obs.Scope
}

func (o Options) fs() diskfault.FS {
	if o.FS == nil {
		return diskfault.OS
	}
	return o.FS
}

func (o Options) mode() os.FileMode {
	if o.Mode == 0 {
		return DefaultFileMode
	}
	return o.Mode
}

// Replay is the outcome of reading a log back on Open.
type Replay struct {
	// Records holds every intact payload, in append order.
	Records [][]byte
	// Note reports a tolerated torn tail ("dropped torn final record at
	// byte offset N") or a quarantine; empty for a clean log.
	Note string
	// Quarantined reports that mid-log corruption was found and the
	// whole damaged file was set aside as a .corrupt sidecar (Quarantine
	// option). Records is empty: the caller must re-source its state.
	Quarantined bool
}

// Log is an append-only record log with group-committed fsync.
type Log struct {
	path   string
	nosync bool

	// mu guards the file and the append counter; appends write their
	// frame under it and release it before syncing.
	mu       sync.Mutex
	f        diskfault.File
	appended uint64 // records written to the file (durable or not)
	size     int64  // byte offset of the end of the last good frame
	failed   error  // non-nil once the log is poisoned

	// syncMu is the group-commit gate; syncedTo is the append counter
	// value covered by the last completed fsync.
	syncMu   sync.Mutex
	syncedTo uint64

	poisonCount *obs.Counter
}

// Open opens (creating if absent) the log at path and replays its
// records. A torn final record is dropped, noted in the Replay, and
// truncated off the file; corruption anywhere earlier returns a
// *CorruptError and no Log — unless Options.Quarantine is set, in which
// case the damaged file becomes a .corrupt sidecar and the log reopens
// empty with Replay.Quarantined set.
func Open(path string, opts Options) (*Log, Replay, error) {
	fsys := opts.fs()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, opts.mode())
	if err != nil {
		return nil, Replay{}, err
	}
	rep, valid, err := scan(f, path)
	if err != nil {
		f.Close()
		var ce *CorruptError
		if !opts.Quarantine || !errors.As(err, &ce) {
			return nil, Replay{}, err
		}
		sidecar, qerr := QuarantineFile(fsys, path)
		if qerr != nil {
			return nil, Replay{}, fmt.Errorf("wal: quarantining %s: %v (original damage: %w)", path, qerr, err)
		}
		opts.Metrics.Counter("wal_quarantined_segments",
			"Damaged WAL or snapshot files set aside as .corrupt sidecars.").Inc()
		if f, err = fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, opts.mode()); err != nil {
			return nil, Replay{}, err
		}
		rep = Replay{
			Quarantined: true,
			Note:        fmt.Sprintf("quarantined corrupt log to %s (%v)", sidecar, ce),
		}
		valid = 0
	}
	if rep.Note != "" && !rep.Quarantined {
		// Physically drop the torn tail so the next append starts at a
		// clean frame boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, Replay{}, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, Replay{}, err
	}
	l := &Log{path: path, nosync: opts.NoSync, f: f, size: valid}
	l.appended = uint64(len(rep.Records))
	l.syncedTo = l.appended
	l.poisonCount = opts.Metrics.Counter("fsync_poisoned_total",
		"WAL handles poisoned by a failed fsync or failed write repair.")
	return l, rep, nil
}

// QuarantineFile sets the file at path aside as a .corrupt sidecar,
// clobbering any sidecar from an earlier incident, and returns the
// sidecar path. The damaged bytes stay on disk for forensics instead of
// being silently destroyed.
func QuarantineFile(fsys diskfault.FS, path string) (string, error) {
	if fsys == nil {
		fsys = diskfault.OS
	}
	sidecar := path + ".corrupt"
	if err := fsys.Rename(path, sidecar); err != nil {
		return "", err
	}
	return sidecar, nil
}

// scan reads every frame from r, returning the replay and the byte
// offset of the end of the last intact frame.
func scan(r io.Reader, path string) (Replay, int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Replay{}, 0, err
	}
	var rep Replay
	size := int64(len(data))
	off := int64(0)
	for off < size {
		rest := size - off
		torn := func(reason string) {
			rep.Note = fmt.Sprintf("dropped torn final record at byte offset %d (%s)", off, reason)
		}
		if rest < frameHeader {
			torn("incomplete frame header")
			return rep, off, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		stored := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecordBytes {
			// A length this absurd is a damaged header, not a short write.
			return Replay{}, 0, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("record length %d exceeds limit %d", length, int64(MaxRecordBytes))}
		}
		end := off + frameHeader + length
		if end > size {
			torn("frame extends past end of file")
			return rep, off, nil
		}
		payload := data[off+frameHeader : end]
		if got := crc32.ChecksumIEEE(payload); got != stored {
			if end == size {
				// Garbage in the very last frame: a crash mid-write.
				torn(fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", stored, got))
				return rep, off, nil
			}
			return Replay{}, 0, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", stored, got)}
		}
		rec := make([]byte, length)
		copy(rec, payload)
		rep.Records = append(rep.Records, rec)
		off = end
	}
	return rep, off, nil
}

// Append writes one record and returns once it is durable (unless the
// log was opened with NoSync). Safe for concurrent use; concurrent
// appends share fsyncs through the group-commit gate.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: %s: record of %d bytes exceeds limit %d", l.path, len(payload), MaxRecordBytes)
	}
	frame := encodeFrame(payload)

	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: %s: append on closed log", l.path)
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		// A short or failed write may have left a partial frame on disk.
		// Truncate back to the last good frame boundary so the damage
		// cannot end up in the middle of the log once later appends land
		// after it; a failed repair poisons the log instead.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.poisonLocked(fmt.Errorf("wal: %s: unrepairable partial write (%v): %w", l.path, terr, ErrPoisoned))
		} else if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
			l.poisonLocked(fmt.Errorf("wal: %s: seek after write repair (%v): %w", l.path, serr, ErrPoisoned))
		}
		l.mu.Unlock()
		return fmt.Errorf("wal: appending to %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	l.appended++
	mine := l.appended
	l.mu.Unlock()
	return l.syncThrough(mine)
}

// poisonLocked marks the log permanently failed. Caller holds l.mu.
func (l *Log) poisonLocked(err error) {
	if l.failed == nil {
		l.failed = err
		if l.poisonCount != nil {
			l.poisonCount.Inc()
		}
	}
}

// Poisoned returns the poison error, or nil while the log is healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// syncThrough blocks until an fsync covering the mine-th append has
// completed. The appender that wins the gate syncs for the whole batch
// written so far; laggards see syncedTo has passed them and return.
func (l *Log) syncThrough(mine uint64) error {
	if l.nosync {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedTo >= mine {
		return nil // a group fsync while we waited already covered us
	}
	// Capture the batch bound before syncing: frames written after this
	// read may or may not be flushed by the fsync below, so only the
	// captured prefix is marked durable.
	l.mu.Lock()
	covered := l.appended
	f := l.f
	failed := l.failed
	l.mu.Unlock()
	if failed != nil {
		return failed
	}
	if f == nil {
		return fmt.Errorf("wal: %s: sync on closed log", l.path)
	}
	if err := f.Sync(); err != nil {
		// The kernel may have dropped the dirty pages it failed to write:
		// a later fsync "succeeding" would not make them durable. Poison
		// the handle so no record written since the last good sync is
		// ever acked (the fsyncgate rule).
		l.mu.Lock()
		l.poisonLocked(fmt.Errorf("wal: %s: fsync failed (%v): %w", l.path, err, ErrPoisoned))
		l.mu.Unlock()
		return fmt.Errorf("wal: syncing %s: %w", l.path, err)
	}
	l.syncedTo = covered
	return nil
}

// Truncate discards every record (after a snapshot has captured them)
// and syncs the truncation.
func (l *Log) Truncate() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: %s: truncate on closed log", l.path)
	}
	if l.failed != nil {
		return l.failed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", l.path, err)
	}
	// The file is already empty: account for that before anything else
	// can fail, so a stale size never drives a later zero-extending
	// repair truncation.
	l.size = 0
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		// The write offset no longer matches the (empty) file; appends
		// through this handle would land at the old offset. Poison like
		// the other repair paths.
		l.poisonLocked(fmt.Errorf("wal: %s: seek after truncate (%v): %w", l.path, err, ErrPoisoned))
		return fmt.Errorf("wal: seeking %s after truncate: %w", l.path, err)
	}
	if !l.nosync {
		if err := l.f.Sync(); err != nil {
			l.poisonLocked(fmt.Errorf("wal: %s: fsync failed (%v): %w", l.path, err, ErrPoisoned))
			return fmt.Errorf("wal: syncing %s: %w", l.path, err)
		}
	}
	return nil
}

// Size returns the log's current byte size.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: %s: size on closed log", l.path)
	}
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the log file. Appended records remain on disk.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
