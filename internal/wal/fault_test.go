package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"conprobe/internal/diskfault"
	"conprobe/internal/obs"
)

// TestFsyncFailurePoisonsLog pins the fsyncgate rule: after one failed
// fsync the handle is poisoned — no later append can claim durability,
// even though a retried fsync would "succeed".
func TestFsyncFailurePoisonsLog(t *testing.T) {
	in := diskfault.New(nil)
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{FS: in.FS(), Metrics: reg.Scope("wal")})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append([]byte("acked")); err != nil {
		t.Fatalf("clean append: %v", err)
	}
	if err := in.Arm(diskfault.Fault{Kind: diskfault.KindFsyncGate}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := l.Append([]byte("lost")); err == nil {
		t.Fatal("append through a failed fsync reported durability")
	}
	if l.Poisoned() == nil {
		t.Fatal("log not poisoned after fsync failure")
	}
	// Every later append must fail with the poison error: the handle may
	// have silently lost the unsynced bytes.
	if err := l.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned log: %v, want ErrPoisoned", err)
	}
	if err := l.Truncate(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("truncate on poisoned log: %v, want ErrPoisoned", err)
	}
	// Reopening replays only what is actually on disk: the acked record
	// survived (its fsync succeeded), the unacked one is gone.
	l.Close()
	l2, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(rep.Records) != 1 || string(rep.Records[0]) != "acked" {
		t.Fatalf("reopen replayed %d records %q, want just the acked one", len(rep.Records), rep.Records)
	}
	// The poison counter surfaced through obs.
	var poisons uint64
	for _, s := range reg.Snapshot() {
		if strings.Contains(s.Name, "fsync_poisoned_total") {
			poisons += uint64(s.Value)
		}
	}
	if poisons != 1 {
		t.Fatalf("fsync_poisoned_total = %d, want 1", poisons)
	}
}

// TestTornWriteRepairedAtFrameBoundary proves a short frame write never
// leaves damage in the middle of the log: the failed append truncates
// back to the last good frame and later appends land clean.
func TestTornWriteRepairedAtFrameBoundary(t *testing.T) {
	in := diskfault.New(nil)
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{FS: in.FS()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append([]byte("first")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := in.Arm(diskfault.Fault{Kind: diskfault.KindTorn, Seed: 5}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := l.Append([]byte("torn-away")); err == nil {
		t.Fatal("torn append reported success")
	}
	if l.Poisoned() != nil {
		t.Fatalf("repairable torn write poisoned the log: %v", l.Poisoned())
	}
	// The log is still usable and the next record lands at a clean
	// frame boundary.
	if err := l.Append([]byte("second")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	l.Close()
	_, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	want := []string{"first", "second"}
	if len(rep.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d (%q)", len(rep.Records), len(want), rep.Records)
	}
	for i, w := range want {
		if string(rep.Records[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, rep.Records[i], w)
		}
	}
	if rep.Note != "" {
		t.Fatalf("unexpected replay note after clean repair: %q", rep.Note)
	}
}

// seekFailFS wraps the real filesystem so a test can make every Seek on
// handles it opened fail once *fail flips true.
type seekFailFS struct {
	base diskfault.FS
	fail *bool
}

func (s seekFailFS) OpenFile(name string, flag int, perm os.FileMode) (diskfault.File, error) {
	f, err := s.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return seekFailFile{File: f, fail: s.fail}, nil
}
func (s seekFailFS) Rename(oldpath, newpath string) error  { return s.base.Rename(oldpath, newpath) }
func (s seekFailFS) Remove(name string) error              { return s.base.Remove(name) }
func (s seekFailFS) Stat(name string) (os.FileInfo, error) { return s.base.Stat(name) }
func (s seekFailFS) SyncDir(dir string) error              { return s.base.SyncDir(dir) }

type seekFailFile struct {
	diskfault.File
	fail *bool
}

func (f seekFailFile) Seek(offset int64, whence int) (int64, error) {
	if *f.fail {
		return 0, errors.New("injected seek failure")
	}
	return f.File.Seek(offset, whence)
}

// TestTruncateSeekFailurePoisons: Truncate empties the file first; if
// the follow-up Seek fails, the handle's write offset no longer matches
// the empty file, so the log must poison rather than let a later append
// land at the stale offset — and the size accounting must already be
// reset so no later repair can zero-extend from a stale size.
func TestTruncateSeekFailurePoisons(t *testing.T) {
	fail := false
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{FS: seekFailFS{base: diskfault.OS, fail: &fail}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for _, rec := range []string{"one", "two"} {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatalf("append %q: %v", rec, err)
		}
	}
	fail = true
	if err := l.Truncate(); err == nil {
		t.Fatal("Truncate with a failing seek reported success")
	}
	if l.Poisoned() == nil {
		t.Fatal("log not poisoned after the post-truncate seek failed")
	}
	if err := l.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned log: %v, want ErrPoisoned", err)
	}
	// The file itself was emptied before the seek failed: a reopen
	// replays nothing, and the fresh handle is usable.
	fail = false
	l.Close()
	l2, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(rep.Records) != 0 {
		t.Fatalf("reopen replayed %q, want an empty log", rep.Records)
	}
	if err := l2.Append([]byte("fresh")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestQuarantineSidecarsMidLogCorruption: with Quarantine set, mid-log
// damage moves the whole file to a .corrupt sidecar and the log reopens
// empty instead of refusing to boot.
func TestQuarantineSidecarsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "oplog.log")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, rec := range []string{"one", "two", "three"} {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatalf("append %q: %v", rec, err)
		}
	}
	l.Close()
	// Flip a payload byte of the FIRST record: mid-log damage, not a
	// torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[frameHeader] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Without Quarantine: refuse, positioned.
	if _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("corrupt log opened without Quarantine")
	}

	reg := obs.NewRegistry()
	l2, rep, err := Open(path, Options{Quarantine: true, Metrics: reg.Scope("wal")})
	if err != nil {
		t.Fatalf("quarantine open: %v", err)
	}
	defer l2.Close()
	if !rep.Quarantined || len(rep.Records) != 0 {
		t.Fatalf("replay = %+v, want quarantined and empty", rep)
	}
	side, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("sidecar missing: %v", err)
	}
	if string(side) != string(raw) {
		t.Fatal("sidecar does not hold the damaged bytes")
	}
	// The reopened log works.
	if err := l2.Append([]byte("fresh")); err != nil {
		t.Fatalf("append after quarantine: %v", err)
	}
	var quarantines uint64
	for _, s := range reg.Snapshot() {
		if strings.Contains(s.Name, "wal_quarantined_segments") {
			quarantines += uint64(s.Value)
		}
	}
	if quarantines != 1 {
		t.Fatalf("wal_quarantined_segments = %d, want 1", quarantines)
	}
}

// TestQuarantineClobbersOldSidecar: a second incident replaces the
// sidecar from the first instead of failing the open.
func TestQuarantineClobbersOldSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "oplog.log")
	if err := os.WriteFile(path+".corrupt", []byte("old incident"), 0o644); err != nil {
		t.Fatalf("seed old sidecar: %v", err)
	}
	// Two intact frames then flip the first payload byte.
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Append([]byte("aa"))
	l.Append([]byte("bb"))
	l.Close()
	raw, _ := os.ReadFile(path)
	raw[frameHeader] ^= 0x01
	os.WriteFile(path, raw, 0o644)

	l2, rep, err := Open(path, Options{Quarantine: true})
	if err != nil {
		t.Fatalf("quarantine open: %v", err)
	}
	defer l2.Close()
	if !rep.Quarantined {
		t.Fatalf("replay = %+v, want quarantined", rep)
	}
	side, _ := os.ReadFile(path + ".corrupt")
	if string(side) == "old incident" {
		t.Fatal("old sidecar survived; new damage lost")
	}
}

// TestSnapshotStaleTmpNeverAdopted: a half-written temp file from a
// crashed prior run must be discarded, not renamed into place.
func TestSnapshotStaleTmpNeverAdopted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.snap")
	// A stale temp at the fixed name, holding garbage.
	if err := os.WriteFile(path+".tmp", []byte("halfwritten-garbage"), 0o600); err != nil {
		t.Fatalf("seed stale tmp: %v", err)
	}
	if err := WriteSnapshot(path, []byte("good state")); err != nil {
		t.Fatalf("WriteSnapshot over stale tmp: %v", err)
	}
	payload, ok, err := ReadSnapshot(path)
	if err != nil || !ok || string(payload) != "good state" {
		t.Fatalf("readback = %q, %t, %v", payload, ok, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestSnapshotMode pins the injected-permission satellite: a mode given
// to WriteSnapshotFS reaches the file.
func TestSnapshotMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.snap")
	if err := WriteSnapshotFS(nil, path, []byte("s"), 0o600); err != nil {
		t.Fatalf("WriteSnapshotFS: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("snapshot mode %v, want 0600", st.Mode().Perm())
	}
}

// TestSnapshotCrashBeforeRenameKeepsOld: an injected rename failure
// leaves the previous snapshot intact and readable.
func TestSnapshotCrashBeforeRenameKeepsOld(t *testing.T) {
	in := diskfault.New(nil)
	path := filepath.Join(t.TempDir(), "node.snap")
	if err := WriteSnapshotFS(in.FS(), path, []byte("v1"), 0); err != nil {
		t.Fatalf("first snapshot: %v", err)
	}
	if err := in.Arm(diskfault.Fault{Kind: diskfault.KindCrashRename}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := WriteSnapshotFS(in.FS(), path, []byte("v2"), 0); err == nil {
		t.Fatal("snapshot write through failed rename reported success")
	}
	payload, ok, err := ReadSnapshotFS(in.FS(), path)
	if err != nil || !ok || string(payload) != "v1" {
		t.Fatalf("after failed replace: %q, %t, %v — old snapshot must survive", payload, ok, err)
	}
	// And the NEXT snapshot attempt succeeds even though the temp from
	// the failed one may linger.
	if err := WriteSnapshotFS(in.FS(), path, []byte("v3"), 0); err != nil {
		t.Fatalf("snapshot after failed rename: %v", err)
	}
	if payload, _, _ = ReadSnapshotFS(in.FS(), path); string(payload) != "v3" {
		t.Fatalf("final snapshot = %q, want v3", payload)
	}
}

// TestSnapshotBitFlipDetected: a read-side bit flip in the snapshot is
// caught by the CRC and reported, never silently returned.
func TestSnapshotBitFlipDetected(t *testing.T) {
	in := diskfault.New(nil)
	path := filepath.Join(t.TempDir(), "node.snap")
	if err := WriteSnapshotFS(in.FS(), path, []byte("sensitive state"), 0); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := in.Arm(diskfault.Fault{Kind: diskfault.KindBitFlip, Seed: 99}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	_, _, err := ReadSnapshotFS(in.FS(), path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("bit-flipped snapshot read: %v, want *CorruptError", err)
	}
}

// TestSnapshotENOSPCKeepsOld: no space for the temp file leaves the
// previous snapshot untouched.
func TestSnapshotENOSPCKeepsOld(t *testing.T) {
	in := diskfault.New(nil)
	path := filepath.Join(t.TempDir(), "node.snap")
	if err := WriteSnapshotFS(in.FS(), path, []byte("v1"), 0); err != nil {
		t.Fatalf("first snapshot: %v", err)
	}
	if err := in.Arm(diskfault.Fault{Kind: diskfault.KindENOSPC, Sticky: true}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := WriteSnapshotFS(in.FS(), path, []byte("v2"), 0); err == nil {
		t.Fatal("snapshot write on a full disk reported success")
	}
	payload, ok, err := ReadSnapshotFS(in.FS(), path)
	if err != nil || !ok || string(payload) != "v1" {
		t.Fatalf("after ENOSPC: %q, %t, %v — old snapshot must survive", payload, ok, err)
	}
}

// TestDirSyncOmissionIsBounded documents the limit of the model: an
// omitted directory sync cannot be detected by the writer (the API
// reports success), but the data file itself was still synced, so the
// exposure is only the rename's directory entry — either the old or the
// new complete snapshot is visible after a crash, never a mix.
func TestDirSyncOmissionIsBounded(t *testing.T) {
	in := diskfault.New(nil)
	path := filepath.Join(t.TempDir(), "node.snap")
	if err := in.Arm(diskfault.Fault{Kind: diskfault.KindDirSyncOmit}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := WriteSnapshotFS(in.FS(), path, []byte("v1"), 0); err != nil {
		t.Fatalf("snapshot with omitted dir sync: %v", err)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1 (the dir sync)", in.Injected())
	}
	payload, ok, err := ReadSnapshotFS(in.FS(), path)
	if err != nil || !ok || string(payload) != "v1" {
		t.Fatalf("snapshot unreadable after omitted dir sync: %q, %t, %v", payload, ok, err)
	}
}
