package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteSnapshot atomically replaces the file at path with a single
// CRC32-framed record holding payload. The write goes to a temporary
// file in the same directory, is fsynced, renamed over path, and the
// parent directory is fsynced so the rename survives power loss — the
// same discipline internal/checkpoint uses for journal compaction. A
// crash at any point leaves either the old snapshot or the new one,
// never a mix.
func WriteSnapshot(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	frame := encodeFrame(payload)
	if _, err := tmp.Write(frame); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("wal: snapshot %s: syncing directory: %w", path, err)
	}
	return nil
}

// ReadSnapshot reads a snapshot written by WriteSnapshot. A missing
// file returns (nil, false, nil): no snapshot yet. A torn or damaged
// snapshot returns a *CorruptError — unlike a log's torn tail there is
// no prefix worth salvaging, and silently ignoring a snapshot would
// resurrect every compacted-away record as a silent data loss.
func ReadSnapshot(path string) (payload []byte, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	rep, _, err := scan(f, path)
	if err != nil {
		return nil, false, err
	}
	if len(rep.Records) != 1 || rep.Note != "" {
		return nil, false, &CorruptError{Path: path, Offset: 0,
			Reason: fmt.Sprintf("snapshot must hold exactly one intact record, found %d (%s)", len(rep.Records), rep.Note)}
	}
	return rep.Records[0], true, nil
}

// encodeFrame frames payload as a single log record.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	putFrameHeader(frame, payload)
	copy(frame[frameHeader:], payload)
	return frame
}
