package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"conprobe/internal/diskfault"
)

// WriteSnapshot atomically replaces the file at path with a single
// CRC32-framed record holding payload, on the real filesystem with the
// default mode. See WriteSnapshotFS.
func WriteSnapshot(path string, payload []byte) error {
	return WriteSnapshotFS(nil, path, payload, 0)
}

// WriteSnapshotFS atomically replaces the file at path with a single
// CRC32-framed record holding payload. The write goes to a temporary
// file in the same directory, is fsynced, renamed over path, and the
// parent directory is fsynced so the rename survives power loss — the
// same discipline internal/checkpoint uses for journal compaction. A
// crash at any point leaves either the old snapshot or the new one,
// never a mix.
//
// The temp file is created with O_EXCL at a fixed name (path + ".tmp"):
// a half-written temp left by a crashed prior run is detected as an
// EEXIST, deleted (it was never renamed, so nothing referenced it), and
// rewritten from scratch — it can never be adopted by the rename.
// fsys nil means the real filesystem; mode zero means DefaultFileMode.
func WriteSnapshotFS(fsys diskfault.FS, path string, payload []byte, mode os.FileMode) error {
	if fsys == nil {
		fsys = diskfault.OS
	}
	if mode == 0 {
		mode = DefaultFileMode
	}
	tmpName := path + ".tmp"
	tmp, err := fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_EXCL, mode)
	if err != nil {
		if !os.IsExist(err) {
			return fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
		// Stale temp from a crashed run: discard and claim the name.
		if rerr := fsys.Remove(tmpName); rerr != nil {
			return fmt.Errorf("wal: snapshot %s: removing stale temp: %w", path, rerr)
		}
		if tmp, err = fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_EXCL, mode); err != nil {
			return fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
	}
	fail := func(err error) error {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	frame := encodeFrame(payload)
	if _, err := tmp.Write(frame); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	if err := SyncDirFS(fsys, filepath.Dir(path)); err != nil {
		return fmt.Errorf("wal: snapshot %s: syncing directory: %w", path, err)
	}
	return nil
}

// ReadSnapshot reads a snapshot written by WriteSnapshot from the real
// filesystem. See ReadSnapshotFS.
func ReadSnapshot(path string) (payload []byte, ok bool, err error) {
	return ReadSnapshotFS(nil, path)
}

// ReadSnapshotFS reads a snapshot written by WriteSnapshotFS. A missing
// file returns (nil, false, nil): no snapshot yet. A torn or damaged
// snapshot returns a *CorruptError — unlike a log's torn tail there is
// no prefix worth salvaging, and silently ignoring a snapshot would
// resurrect every compacted-away record as a silent data loss. Callers
// that can re-source the state (cluster nodes) may quarantine the
// damaged file with QuarantineFile and rejoin; the rest must stop.
func ReadSnapshotFS(fsys diskfault.FS, path string) (payload []byte, ok bool, err error) {
	if fsys == nil {
		fsys = diskfault.OS
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	rep, _, err := scan(f, path)
	if err != nil {
		return nil, false, err
	}
	if len(rep.Records) != 1 || rep.Note != "" {
		return nil, false, &CorruptError{Path: path, Offset: 0,
			Reason: fmt.Sprintf("snapshot must hold exactly one intact record, found %d (%s)", len(rep.Records), rep.Note)}
	}
	return rep.Records[0], true, nil
}

// encodeFrame frames payload as a single log record.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	putFrameHeader(frame, payload)
	copy(frame[frameHeader:], payload)
	return frame
}
