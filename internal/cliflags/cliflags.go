// Package cliflags registers the command-line flags the cmd/* binaries
// share, so every binary spells a shared concept with the same flag
// name, default and help text. A binary registers only the groups it
// needs; because each group is defined once here, the conventions
// cannot drift between binaries.
//
// Canonical conventions:
//
//   - -seed             deterministic seed, default 1
//   - -service          profile name (consvc/conload default fbgroup;
//     conprobe accepts the extra value "all")
//   - -shards           store lock-stripe count, 0 = profile default
//   - -sites            comma-separated client sites
//   - -pprof-addr       net/http/pprof listen address, empty = off
//   - -inject-*         deterministic fault-injection rates/durations
//   - -retries et al.   resilience middleware (0 or 1 retries = off,
//     breaker off by default)
//   - -csv/-json/-md    report output format selectors
package cliflags

import (
	"flag"
	"strings"
	"time"

	"conprobe/internal/diskfault"
	"conprobe/internal/faultinject"
	"conprobe/internal/obs"
	"conprobe/internal/resilience"
)

// Canonical defaults for the shared flags.
const (
	DefaultSeed              = int64(1)
	DefaultService           = "fbgroup"
	DefaultSites             = "oregon,tokyo,ireland"
	DefaultRetries           = 3
	DefaultRetryBase         = 200 * time.Millisecond
	DefaultBreakerThreshold  = 0
	DefaultBreakerOpen       = 30 * time.Second
	DefaultElectionTimeout   = time.Second
	DefaultHeartbeatInterval = 100 * time.Millisecond
)

// Seed registers the canonical -seed flag.
func Seed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", DefaultSeed, "deterministic seed; a fixed seed reproduces the run")
}

// Service registers the canonical -service flag with the given default
// (binaries that serve or drive a single profile pass DefaultService).
func Service(fs *flag.FlagSet, def string) *string {
	return fs.String("service", def, "service profile (googleplus, blogger, fbfeed, fbgroup)")
}

// ServiceMulti registers conprobe's -service variant, which also
// accepts "all" to run every profile.
func ServiceMulti(fs *flag.FlagSet) *string {
	return fs.String("service", "all", "service profile (googleplus, blogger, fbfeed, fbgroup, or all)")
}

// StoreShards registers the canonical -shards flag: the store
// lock-stripe count of a simulated service.
func StoreShards(fs *flag.FlagSet) *int {
	return fs.Int("shards", 0, "store lock-stripe count (0 = profile default)")
}

// Sites registers the canonical -sites flag.
func Sites(fs *flag.FlagSet) *string {
	return fs.String("sites", DefaultSites, "comma-separated client sites")
}

// Pprof registers the canonical -pprof-addr flag.
func Pprof(fs *flag.FlagSet) *string {
	return fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
}

// Election bundles the cluster election and write-quorum flags shared
// by replicated deployments.
type Election struct {
	ElectionTimeout   *time.Duration
	HeartbeatInterval *time.Duration
	Quorum            *int
	ClockSkew         *time.Duration
}

// ElectionFlags registers the -election-timeout / -heartbeat-interval /
// -quorum / -clock-skew group.
func ElectionFlags(fs *flag.FlagSet) Election {
	return Election{
		ElectionTimeout:   fs.Duration("election-timeout", DefaultElectionTimeout, "base heartbeat-silence span before a follower campaigns; each arming adds random jitter in [0, value)"),
		HeartbeatInterval: fs.Duration("heartbeat-interval", DefaultHeartbeatInterval, "leader heartbeat period; keep well under -election-timeout"),
		Quorum:            fs.Int("quorum", 0, "write-ack quorum size including the leader (0 = majority of the cluster)"),
		ClockSkew:         fs.Duration("clock-skew", 0, "assumed bound on inter-node clock drift; the leader lease lasts election-timeout minus twice this (0 = a tenth of -election-timeout)"),
	}
}

// ReadMode registers the canonical -read-mode flag selecting the
// cluster read consistency level.
func ReadMode(fs *flag.FlagSet) *string {
	return fs.String("read-mode", "local",
		"cluster read consistency: local (any replica, no leadership check), lease (leader under a clock-skew-bounded lease), quorum (read-index heartbeat round)")
}

// Inject bundles the deterministic fault-injection flags.
type Inject struct {
	WriteFail    *float64
	ReadFail     *float64
	LatencyRate  *float64
	Latency      *time.Duration
	TimeoutRate  *float64
	Timeout      *time.Duration
	TruncateRate *float64
}

// InjectFlags registers the -inject-* group.
func InjectFlags(fs *flag.FlagSet) Inject {
	return Inject{
		WriteFail:    fs.Float64("inject-write-fail", 0, "inject write failures at this rate [0,1]"),
		ReadFail:     fs.Float64("inject-read-fail", 0, "inject read failures at this rate [0,1]"),
		LatencyRate:  fs.Float64("inject-latency-rate", 0, "inject latency spikes at this rate [0,1]"),
		Latency:      fs.Duration("inject-latency", 2*time.Second, "mean injected latency spike"),
		TimeoutRate:  fs.Float64("inject-timeout-rate", 0, "inject timeouts (stall then fail) at this rate [0,1]"),
		Timeout:      fs.Duration("inject-timeout", 5*time.Second, "injected timeout stall duration"),
		TruncateRate: fs.Float64("inject-truncate", 0, "truncate read responses at this rate [0,1]"),
	}
}

// DiskFaultSpecs collects -disk-fault drill specs. The flag is
// repeatable and each value may also carry several comma-separated
// specs; every spec is validated at parse time so a typo fails the
// flag, not the first write an hour later.
type DiskFaultSpecs []string

func (d *DiskFaultSpecs) String() string { return strings.Join(*d, ",") }

// Set implements flag.Value.
func (d *DiskFaultSpecs) Set(v string) error {
	for _, spec := range strings.Split(v, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if _, _, err := diskfault.ParseSpec(spec); err != nil {
			return err
		}
		*d = append(*d, spec)
	}
	return nil
}

// DiskFaults registers the canonical -disk-fault flag arming
// deterministic storage-fault drills.
func DiskFaults(fs *flag.FlagSet) *DiskFaultSpecs {
	var d DiskFaultSpecs
	fs.Var(&d, "disk-fault",
		"arm a deterministic storage fault, site:kind[:afterN] — sites wal, term, snapshot, store, checkpoint; kinds torn, fsync-gate, bit-flip, enospc, dirsync-omit, crash-rename (repeatable)")
	return &d
}

// Injector builds a diskfault.Injector with every spec armed, seeding
// the deterministic damage from seed. Returns nil when no specs were
// given, so callers can pass the result's FS straight through (a nil
// injector means the OS filesystem).
func (d DiskFaultSpecs) Injector(sc *obs.Scope, seed int64) (*diskfault.Injector, error) {
	if len(d) == 0 {
		return nil, nil
	}
	inj := diskfault.New(sc)
	for _, spec := range d {
		_, f, err := diskfault.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		f.Seed = uint64(seed)
		if err := inj.Arm(f); err != nil {
			return nil, err
		}
	}
	return inj, nil
}

// Config renders the flags as a faultinject.Config. ok is false when
// every rate is zero (injection disabled).
func (f Inject) Config() (cfg faultinject.Config, ok bool) {
	cfg = faultinject.Config{
		WriteFailRate:    *f.WriteFail,
		ReadFailRate:     *f.ReadFail,
		LatencyRate:      *f.LatencyRate,
		Latency:          *f.Latency,
		TimeoutRate:      *f.TimeoutRate,
		Timeout:          *f.Timeout,
		TruncateReadRate: *f.TruncateRate,
	}
	return cfg, cfg.Enabled()
}

// Resilience bundles the retry/breaker middleware flags.
type Resilience struct {
	Retries          *int
	RetryBase        *time.Duration
	BreakerThreshold *int
	BreakerOpen      *time.Duration
}

// ResilienceFlags registers the -retries/-retry-base/-breaker-* group.
func ResilienceFlags(fs *flag.FlagSet) Resilience {
	return Resilience{
		Retries:          fs.Int("retries", DefaultRetries, "retry attempts per operation, including the first (0 or 1 disables retries)"),
		RetryBase:        fs.Duration("retry-base", DefaultRetryBase, "base backoff before the first retry"),
		BreakerThreshold: fs.Int("breaker-threshold", DefaultBreakerThreshold, "consecutive failures tripping the circuit breaker (0 disables)"),
		BreakerOpen:      fs.Duration("breaker-open", DefaultBreakerOpen, "how long a tripped breaker rejects operations"),
	}
}

// Policies renders the flags as the optional retry policy and breaker
// config (nil when disabled).
func (r Resilience) Policies() (*resilience.RetryPolicy, *resilience.BreakerConfig) {
	var retry *resilience.RetryPolicy
	if *r.Retries > 1 {
		retry = &resilience.RetryPolicy{MaxAttempts: *r.Retries, BaseDelay: *r.RetryBase}
	}
	var breaker *resilience.BreakerConfig
	if *r.BreakerThreshold > 0 {
		breaker = &resilience.BreakerConfig{FailureThreshold: *r.BreakerThreshold, OpenFor: *r.BreakerOpen}
	}
	return retry, breaker
}

// Formats bundles the report output-format selectors.
type Formats struct {
	CSV  *bool
	JSON *bool
	MD   *bool
}

// FormatFlags registers the -csv/-json/-md group.
func FormatFlags(fs *flag.FlagSet) Formats {
	return Formats{
		CSV:  fs.Bool("csv", false, "emit figure data series as CSV instead of the text report"),
		JSON: fs.Bool("json", false, "emit the analysis as machine-readable JSON"),
		MD:   fs.Bool("md", false, "emit the analysis as Markdown"),
	}
}
