package cliflags

import (
	"flag"
	"io"
	"testing"
)

// TestCanonicalFlagTable pins the shared flags' names, defaults and
// help text. Every cmd/* binary registers these concepts through this
// package, so holding the table here holds it for all of them.
func TestCanonicalFlagTable(t *testing.T) {
	fs := flag.NewFlagSet("canon", flag.ContinueOnError)
	Seed(fs)
	Service(fs, DefaultService)
	StoreShards(fs)
	Sites(fs)
	Pprof(fs)
	InjectFlags(fs)
	ResilienceFlags(fs)
	FormatFlags(fs)
	ElectionFlags(fs)
	ReadMode(fs)

	want := map[string][2]string{
		"seed":                {"1", "deterministic seed; a fixed seed reproduces the run"},
		"service":             {"fbgroup", "service profile (googleplus, blogger, fbfeed, fbgroup)"},
		"shards":              {"0", "store lock-stripe count (0 = profile default)"},
		"sites":               {"oregon,tokyo,ireland", "comma-separated client sites"},
		"pprof-addr":          {"", "serve net/http/pprof on this address (empty = disabled)"},
		"inject-write-fail":   {"0", "inject write failures at this rate [0,1]"},
		"inject-read-fail":    {"0", "inject read failures at this rate [0,1]"},
		"inject-latency-rate": {"0", "inject latency spikes at this rate [0,1]"},
		"inject-latency":      {"2s", "mean injected latency spike"},
		"inject-timeout-rate": {"0", "inject timeouts (stall then fail) at this rate [0,1]"},
		"inject-timeout":      {"5s", "injected timeout stall duration"},
		"inject-truncate":     {"0", "truncate read responses at this rate [0,1]"},
		"retries":             {"3", "retry attempts per operation, including the first (0 or 1 disables retries)"},
		"retry-base":          {"200ms", "base backoff before the first retry"},
		"breaker-threshold":   {"0", "consecutive failures tripping the circuit breaker (0 disables)"},
		"breaker-open":        {"30s", "how long a tripped breaker rejects operations"},
		"election-timeout":    {"1s", "base heartbeat-silence span before a follower campaigns; each arming adds random jitter in [0, value)"},
		"heartbeat-interval":  {"100ms", "leader heartbeat period; keep well under -election-timeout"},
		"quorum":              {"0", "write-ack quorum size including the leader (0 = majority of the cluster)"},
		"clock-skew":          {"0s", "assumed bound on inter-node clock drift; the leader lease lasts election-timeout minus twice this (0 = a tenth of -election-timeout)"},
		"read-mode":           {"local", "cluster read consistency: local (any replica, no leadership check), lease (leader under a clock-skew-bounded lease), quorum (read-index heartbeat round)"},
		"csv":                 {"false", "emit figure data series as CSV instead of the text report"},
		"json":                {"false", "emit the analysis as machine-readable JSON"},
		"md":                  {"false", "emit the analysis as Markdown"},
	}
	got := 0
	fs.VisitAll(func(f *flag.Flag) {
		got++
		w, ok := want[f.Name]
		if !ok {
			t.Errorf("unexpected shared flag -%s", f.Name)
			return
		}
		if f.DefValue != w[0] {
			t.Errorf("-%s default = %q, want %q", f.Name, f.DefValue, w[0])
		}
		if f.Usage != w[1] {
			t.Errorf("-%s help = %q, want %q", f.Name, f.Usage, w[1])
		}
	})
	if got != len(want) {
		t.Errorf("registered %d shared flags, want %d", got, len(want))
	}
}

func TestResiliencePolicies(t *testing.T) {
	fs := flag.NewFlagSet("r", flag.ContinueOnError)
	r := ResilienceFlags(fs)
	if err := fs.Parse([]string{"-retries", "1", "-breaker-threshold", "0"}); err != nil {
		t.Fatal(err)
	}
	retry, breaker := r.Policies()
	if retry != nil || breaker != nil {
		t.Fatalf("retries=1/breaker=0 should disable both, got %v %v", retry, breaker)
	}
	fs2 := flag.NewFlagSet("r2", flag.ContinueOnError)
	r2 := ResilienceFlags(fs2)
	if err := fs2.Parse([]string{"-retries", "4", "-breaker-threshold", "2"}); err != nil {
		t.Fatal(err)
	}
	retry, breaker = r2.Policies()
	if retry == nil || retry.MaxAttempts != 4 {
		t.Fatalf("retry policy = %+v, want MaxAttempts 4", retry)
	}
	if breaker == nil || breaker.FailureThreshold != 2 {
		t.Fatalf("breaker = %+v, want FailureThreshold 2", breaker)
	}
}

func TestInjectConfigDisabledWhenZero(t *testing.T) {
	fs := flag.NewFlagSet("i", flag.ContinueOnError)
	inj := InjectFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := inj.Config(); ok {
		t.Fatal("zero rates should report disabled")
	}
	fs2 := flag.NewFlagSet("i2", flag.ContinueOnError)
	inj2 := InjectFlags(fs2)
	if err := fs2.Parse([]string{"-inject-write-fail", "0.5"}); err != nil {
		t.Fatal(err)
	}
	cfg, ok := inj2.Config()
	if !ok || cfg.WriteFailRate != 0.5 {
		t.Fatalf("cfg = %+v ok=%v, want enabled with WriteFailRate 0.5", cfg, ok)
	}
}

func TestDiskFaultsParseAndArm(t *testing.T) {
	fs := flag.NewFlagSet("d", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	d := DiskFaults(fs)
	if err := fs.Parse([]string{"-disk-fault", "term:fsync-gate", "-disk-fault", "wal:torn:3,snapshot:bit-flip"}); err != nil {
		t.Fatal(err)
	}
	if len(*d) != 3 {
		t.Fatalf("parsed %d specs, want 3: %v", len(*d), *d)
	}
	inj, err := d.Injector(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil || inj.Armed() != 3 {
		t.Fatalf("injector armed %v faults, want 3", inj)
	}

	var none DiskFaultSpecs
	if inj, err := none.Injector(nil, 7); err != nil || inj != nil {
		t.Fatalf("empty specs should yield a nil injector, got %v %v", inj, err)
	}

	bad := flag.NewFlagSet("bad", flag.ContinueOnError)
	bad.SetOutput(io.Discard)
	DiskFaults(bad)
	if err := bad.Parse([]string{"-disk-fault", "nosite:torn"}); err == nil {
		t.Fatal("unknown site accepted at parse time")
	}
	bad2 := flag.NewFlagSet("bad2", flag.ContinueOnError)
	bad2.SetOutput(io.Discard)
	DiskFaults(bad2)
	if err := bad2.Parse([]string{"-disk-fault", "wal:melt"}); err == nil {
		t.Fatal("unknown fault kind accepted at parse time")
	}
}
