package core

import (
	"testing"
	"testing/quick"
	"time"

	"conprobe/internal/trace"
)

func ids(ss ...string) []trace.WriteID {
	out := make([]trace.WriteID, len(ss))
	for i, s := range ss {
		out[i] = trace.WriteID(s)
	}
	return out
}

func TestContentDivergedCondition(t *testing.T) {
	tests := []struct {
		name   string
		s1, s2 []trace.WriteID
		want   bool
	}{
		{"paper example: one sees M1, other sees M2", ids("m1"), ids("m2"), true},
		{"identical", ids("m1", "m2"), ids("m1", "m2"), false},
		{"subset is not divergence", ids("m1"), ids("m1", "m2"), false},
		{"superset is not divergence", ids("m1", "m2"), ids("m1"), false},
		{"both empty", nil, nil, false},
		{"one empty", ids("m1"), nil, false},
		{"disjoint overlap", ids("m1", "m2"), ids("m2", "m3"), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := contentDiverged(tt.s1, tt.s2); got != tt.want {
				t.Fatalf("contentDiverged(%v,%v) = %v, want %v", tt.s1, tt.s2, got, tt.want)
			}
		})
	}
}

func TestContentDivergedSymmetric(t *testing.T) {
	f := func(a, b []string) bool {
		s1 := make([]trace.WriteID, len(a))
		for i, x := range a {
			s1[i] = trace.WriteID(x)
		}
		s2 := make([]trace.WriteID, len(b))
		for i, x := range b {
			s2[i] = trace.WriteID(x)
		}
		return contentDiverged(s1, s2) == contentDiverged(s2, s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderDivergedCondition(t *testing.T) {
	tests := []struct {
		name   string
		s1, s2 []trace.WriteID
		want   bool
	}{
		{"paper example: (M1,M2) vs (M2,M1)", ids("m1", "m2"), ids("m2", "m1"), true},
		{"same order", ids("m1", "m2"), ids("m1", "m2"), false},
		{"interleaved extra writes same order", ids("m1", "x", "m2"), ids("m1", "m2", "y"), false},
		{"inversion with extras", ids("a", "m1", "m2"), ids("m2", "b", "m1"), true},
		{"no common writes", ids("m1"), ids("m2"), false},
		{"single common write", ids("m1", "m2"), ids("m2", "m3"), false},
		{"empty", nil, nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, got := orderDiverged(tt.s1, tt.s2)
			if got != tt.want {
				t.Fatalf("orderDiverged(%v,%v) = %v, want %v", tt.s1, tt.s2, got, tt.want)
			}
		})
	}
}

func TestOrderDivergedWitness(t *testing.T) {
	x, y, ok := orderDiverged(ids("m1", "m2"), ids("m2", "m1"))
	if !ok || x != "m1" || y != "m2" {
		t.Fatalf("witness = %v,%v,%v", x, y, ok)
	}
}

func TestOrderDivergedSymmetricProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		// Map small ints to IDs; dedupe to keep sequences set-like, as
		// service read results are.
		mk := func(xs []uint8) []trace.WriteID {
			seen := map[uint8]bool{}
			var out []trace.WriteID
			for _, x := range xs {
				x %= 8
				if !seen[x] {
					seen[x] = true
					out = append(out, trace.WriteID(string(rune('a'+x))))
				}
			}
			return out
		}
		s1, s2 := mk(a), mk(b)
		_, _, d1 := orderDiverged(s1, s2)
		_, _, d2 := orderDiverged(s2, s1)
		return d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckContentDivergencePaperExample(t *testing.T) {
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 40, "m1"),
		rd(2, 0, 40, "m2"),
	})
	vs := CheckContentDivergence(tr)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.Agent != 1 || v.Other != 2 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCheckContentDivergenceNoFalsePositive(t *testing.T) {
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 40, "m1"),
		rd(2, 0, 40, "m1", "m2"), // superset: not divergence
	})
	if vs := CheckContentDivergence(tr); len(vs) != 0 {
		t.Fatalf("unexpected: %+v", vs)
	}
}

func TestCheckOrderDivergencePaperExample(t *testing.T) {
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 40, "m1", "m2"),
		rd(2, 0, 40, "m2", "m1"),
	})
	vs := CheckOrderDivergence(tr)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
}

func TestCheckDivergenceAcrossNonOverlappingReads(t *testing.T) {
	// The boolean anomaly holds even when reads never overlapped in time
	// (the paper's zero-window example).
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 40, "m1"),
		rd(1, 100, 140, "m1", "m2"),
		rd(2, 200, 240, "m2"),
		rd(2, 300, 340, "m1", "m2"),
	})
	if vs := CheckContentDivergence(tr); len(vs) == 0 {
		t.Fatal("expected content divergence across non-overlapping reads")
	}
}

func TestPairsEnumeration(t *testing.T) {
	tr := newTrace(3, nil, nil)
	ps := Pairs(tr)
	want := []Pair{{1, 2}, {1, 3}, {2, 3}}
	if len(ps) != 3 {
		t.Fatalf("got %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("Pairs = %v, want %v", ps, want)
		}
	}
}

func TestMakePairNormalizes(t *testing.T) {
	if MakePair(3, 1) != (Pair{1, 3}) {
		t.Fatal("MakePair did not normalize")
	}
}

// windowTrace builds the canonical window scenario: both agents read
// continuously; divergence appears and heals.
func windowTrace() *trace.TestTrace {
	return newTrace(2, nil, []trace.Read{
		// t=0: both agree (empty).
		rd(1, 0, 0),
		rd(2, 0, 0),
		// t=100: agent1 sees m1, agent2 sees m2 -> diverged.
		rd(1, 100, 100, "m1"),
		rd(2, 100, 100, "m2"),
		// t=400: agent1 sees both; agent2 still only m2 -> agent2's view
		// is a subset: no longer content-diverged.
		rd(1, 400, 400, "m1", "m2"),
		// t=700: agent2 catches up fully.
		rd(2, 700, 700, "m1", "m2"),
	})
}

func TestContentDivergenceWindowMeasuresInterval(t *testing.T) {
	tr := windowTrace()
	ws := ContentDivergenceWindows(tr)
	if len(ws) != 1 {
		t.Fatalf("got %d results, want 1", len(ws))
	}
	w := ws[0]
	// Diverged from t=100 (second read pair) until t=400.
	if w.Largest != 300*time.Millisecond {
		t.Fatalf("Largest = %v, want 300ms", w.Largest)
	}
	if !w.Converged {
		t.Fatal("should have converged")
	}
	if w.Count != 1 {
		t.Fatalf("Count = %d, want 1", w.Count)
	}
}

func TestContentDivergenceWindowZeroWhenNoOverlap(t *testing.T) {
	// The paper's example: divergence happened but the timeline condition
	// never held, so the window is zero.
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 0, "m1"),
		rd(1, 100, 100, "m1", "m2"),
		rd(2, 200, 200, "m2"),
		rd(2, 300, 300, "m1", "m2"),
	})
	ws := ContentDivergenceWindows(tr)
	if len(ws) != 1 {
		t.Fatal("want one pair")
	}
	// At t=200 agent1's latest is (m1,m2), agent2's is (m2): subset, not
	// diverged. Window must be zero although the boolean anomaly holds.
	if ws[0].Largest != 0 || ws[0].Count != 0 {
		t.Fatalf("window = %+v, want zero", ws[0])
	}
	if len(CheckContentDivergence(tr)) == 0 {
		t.Fatal("boolean anomaly should still hold")
	}
}

func TestContentDivergenceWindowNotConverged(t *testing.T) {
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 0, "m1"),
		rd(2, 0, 0, "m2"),
		rd(1, 500, 500, "m1"),
		rd(2, 500, 500, "m2"),
	})
	ws := ContentDivergenceWindows(tr)
	if ws[0].Converged {
		t.Fatal("should not have converged")
	}
	if ws[0].Largest != 500*time.Millisecond {
		t.Fatalf("Largest = %v, want 500ms (measured to last event)", ws[0].Largest)
	}
}

func TestContentDivergenceWindowAppliesClockDeltas(t *testing.T) {
	tr := windowTrace()
	// Skew agent 2's clock: its local stamps are 50ms behind reference, so
	// delta=+50ms shifts its events later... and changes interval lengths.
	tr.Deltas = map[trace.AgentID]time.Duration{2: 50 * time.Millisecond}
	ws := ContentDivergenceWindows(tr)
	// Divergence starts at corrected t=150 (agent2's m2-read) and ends at
	// t=400 (agent1 full view): 250ms.
	if ws[0].Largest != 250*time.Millisecond {
		t.Fatalf("Largest = %v, want 250ms after delta correction", ws[0].Largest)
	}
}

func TestOrderDivergenceWindow(t *testing.T) {
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 0, "m1", "m2"),
		rd(2, 0, 0, "m2", "m1"), // diverged order from t=0
		rd(2, 800, 800, "m1", "m2"),
	})
	ws := OrderDivergenceWindows(tr)
	if len(ws) != 1 {
		t.Fatal("want one pair")
	}
	if ws[0].Largest != 800*time.Millisecond {
		t.Fatalf("Largest = %v, want 800ms", ws[0].Largest)
	}
	if !ws[0].Converged {
		t.Fatal("should converge at final read")
	}
}

func TestOrderDivergenceWindowMultipleIntervals(t *testing.T) {
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 0, "m1", "m2"),
		rd(2, 0, 0, "m2", "m1"),     // diverge #1 at 0
		rd(2, 100, 100, "m1", "m2"), // heal at 100
		rd(2, 300, 300, "m2", "m1"), // diverge #2 at 300
		rd(2, 350, 350, "m1", "m2"), // heal at 350
	})
	ws := OrderDivergenceWindows(tr)
	w := ws[0]
	if w.Count != 2 {
		t.Fatalf("Count = %d, want 2", w.Count)
	}
	if w.Largest != 100*time.Millisecond {
		t.Fatalf("Largest = %v, want 100ms", w.Largest)
	}
	if w.Total != 150*time.Millisecond {
		t.Fatalf("Total = %v, want 150ms", w.Total)
	}
}

func TestWindowsEmptyTraceSafe(t *testing.T) {
	tr := newTrace(3, nil, nil)
	ws := ContentDivergenceWindows(tr)
	if len(ws) != 3 {
		t.Fatalf("want 3 pair results, got %d", len(ws))
	}
	for _, w := range ws {
		if w.Largest != 0 || !w.Converged {
			t.Fatalf("empty trace window = %+v", w)
		}
	}
}

func TestWindowLargestNeverNegativeProperty(t *testing.T) {
	f := func(obs [][]uint8, times []int16) bool {
		// Build arbitrary two-agent read streams.
		var reads []trace.Read
		for i, o := range obs {
			if i >= len(times) {
				break
			}
			ms := int(times[i])
			if ms < 0 {
				ms = -ms
			}
			var seq []string
			seen := map[uint8]bool{}
			for _, x := range o {
				x %= 6
				if !seen[x] {
					seen[x] = true
					seq = append(seq, string(rune('a'+x)))
				}
			}
			reads = append(reads, rd(1+i%2, ms, ms, seq...))
		}
		tr := newTrace(2, nil, reads)
		for _, w := range ContentDivergenceWindows(tr) {
			if w.Largest < 0 || w.Total < 0 || w.Largest > w.Total {
				return false
			}
		}
		for _, w := range OrderDivergenceWindows(tr) {
			if w.Largest < 0 || w.Total < 0 || w.Largest > w.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowsClockDeltaCanReorderAgentsEvents(t *testing.T) {
	// Two agents' reads interleave differently once deltas are applied:
	// on raw local stamps agent 2's diverging read appears *after*
	// agent 1 converged (zero window); corrected, they overlap.
	tr := newTrace(2, nil, []trace.Read{
		rd(1, 0, 0, "m1"),
		rd(1, 500, 500, "m1", "m2"), // agent1 converges at local 500
		rd(2, 600, 600, "m2"),       // diverging read, local 600
		rd(2, 900, 900, "m1", "m2"),
	})
	// Without correction: when agent2's (m2)-read lands, agent1's state
	// is already (m1,m2): subset, no window.
	if w := ContentDivergenceWindows(tr)[0]; w.Largest != 0 {
		t.Fatalf("uncorrected window = %v, want 0", w.Largest)
	}
	// Agent 2's clock is 550ms fast: corrected, its diverging read
	// happened at reference 50ms — while agent1 still saw only m1 — and
	// its convergence at 350ms. Window = from agent2's read (50ms) until
	// agent2 converges (350ms): 300ms.
	tr.Deltas = map[trace.AgentID]time.Duration{2: -550 * time.Millisecond}
	w := ContentDivergenceWindows(tr)[0]
	if w.Largest != 300*time.Millisecond {
		t.Fatalf("corrected window = %v, want 300ms", w.Largest)
	}
}
