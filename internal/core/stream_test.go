package core

import (
	"testing"
	"testing/quick"

	"conprobe/internal/trace"
)

func TestStreamRYW(t *testing.T) {
	s := NewStream()
	s.ObserveWrite(wr("m1", 1, 1, 0, 50))
	vs := s.ObserveRead(rd(1, 100, 140)) // empty read after own write
	if countAnomaly(vs, ReadYourWrites) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	// Other agents are not obligated.
	vs = s.ObserveRead(rd(2, 100, 140))
	if countAnomaly(vs, ReadYourWrites) != 0 {
		t.Fatalf("agent2 RYW: %+v", vs)
	}
	// In-flight writes don't count.
	s.ObserveWrite(wr("m2", 1, 2, 200, 900))
	vs = s.ObserveRead(rd(1, 300, 340, "m1"))
	if countAnomaly(vs, ReadYourWrites) != 0 {
		t.Fatalf("in-flight counted: %+v", vs)
	}
}

func TestStreamMW(t *testing.T) {
	s := NewStream()
	s.ObserveWrite(wr("m1", 1, 1, 0, 50))
	s.ObserveWrite(wr("m2", 1, 2, 60, 110))
	vs := s.ObserveRead(rd(2, 200, 240, "m2"))
	if countAnomaly(vs, MonotonicWrites) != 1 {
		t.Fatalf("missing-prefix MW: %+v", vs)
	}
	vs = s.ObserveRead(rd(2, 300, 340, "m2", "m1"))
	if countAnomaly(vs, MonotonicWrites) != 1 {
		t.Fatalf("reorder MW: %+v", vs)
	}
	vs = s.ObserveRead(rd(2, 400, 440, "m1", "m2"))
	if countAnomaly(vs, MonotonicWrites) != 0 {
		t.Fatalf("clean read flagged: %+v", vs)
	}
}

func TestStreamMR(t *testing.T) {
	s := NewStream()
	if vs := s.ObserveRead(rd(1, 0, 40, "m1")); len(vs) != 0 {
		t.Fatalf("first read flagged: %+v", vs)
	}
	vs := s.ObserveRead(rd(1, 100, 140))
	if countAnomaly(vs, MonotonicReads) != 1 {
		t.Fatalf("disappearance missed: %+v", vs)
	}
	// Another agent's high water is separate.
	if vs := s.ObserveRead(rd(2, 100, 140)); countAnomaly(vs, MonotonicReads) != 0 {
		t.Fatalf("cross-agent MR: %+v", vs)
	}
}

func TestStreamWFR(t *testing.T) {
	s := NewStream()
	w3 := wr("m3", 2, 1, 300, 350)
	w3.Trigger = "m2"
	s.ObserveWrite(wr("m2", 1, 2, 60, 110))
	s.ObserveWrite(w3)
	vs := s.ObserveRead(rd(3, 400, 440, "m3"))
	if countAnomaly(vs, WritesFollowsReads) != 1 {
		t.Fatalf("WFR missed: %+v", vs)
	}
	vs = s.ObserveRead(rd(3, 500, 540, "m2", "m3"))
	if countAnomaly(vs, WritesFollowsReads) != 0 {
		t.Fatalf("clean WFR flagged: %+v", vs)
	}
}

func TestStreamDivergenceEdgeTriggered(t *testing.T) {
	s := NewStream()
	s.ObserveRead(rd(1, 0, 40, "m1"))
	vs := s.ObserveRead(rd(2, 50, 90, "m2"))
	if countAnomaly(vs, ContentDivergence) != 1 {
		t.Fatalf("CD onset missed: %+v", vs)
	}
	// Still diverged: no repeated event.
	vs = s.ObserveRead(rd(2, 150, 190, "m2"))
	if countAnomaly(vs, ContentDivergence) != 0 {
		t.Fatalf("CD re-reported while held: %+v", vs)
	}
	// Converge.
	vs = s.ObserveRead(rd(2, 250, 290, "m1", "m2"))
	vs = append(vs, s.ObserveRead(rd(1, 300, 340, "m1", "m2"))...)
	if countAnomaly(vs, ContentDivergence) != 0 {
		t.Fatalf("converged state flagged: %+v", vs)
	}
	c, o := s.Diverged(1, 2)
	if c || o {
		t.Fatal("Diverged should be false after convergence")
	}
	// Re-diverge: a fresh event.
	vs = s.ObserveRead(rd(1, 400, 440, "m1", "m3"))
	if countAnomaly(vs, ContentDivergence) != 1 {
		t.Fatalf("re-divergence missed: %+v", vs)
	}
}

func TestStreamOrderDivergence(t *testing.T) {
	s := NewStream()
	s.ObserveRead(rd(1, 0, 40, "m1", "m2"))
	vs := s.ObserveRead(rd(2, 50, 90, "m2", "m1"))
	if countAnomaly(vs, OrderDivergence) != 1 {
		t.Fatalf("OD missed: %+v", vs)
	}
	_, o := s.Diverged(2, 1)
	if !o {
		t.Fatal("Diverged(order) should hold")
	}
}

func TestStreamReset(t *testing.T) {
	s := NewStream()
	s.ObserveWrite(wr("m1", 1, 1, 0, 50))
	s.ObserveRead(rd(1, 100, 140, "m1"))
	s.Reset()
	// Previously seen write vanishing is no longer a violation.
	if vs := s.ObserveRead(rd(1, 200, 240)); len(vs) != 0 {
		t.Fatalf("state survived reset: %+v", vs)
	}
}

// TestStreamMatchesBatchCheckers replays full traces through the stream
// and cross-checks the session-guarantee counts against the batch
// checkers (metamorphic property: same inputs, same detections).
func TestStreamMatchesBatchCheckers(t *testing.T) {
	f := func(obsRaw [][]uint8, agentsRaw []uint8) bool {
		// Build a two-agent trace with writes m1,m2 by agent 1 and
		// arbitrary read observations.
		tr := newTrace(2,
			[]trace.Write{wr("a", 1, 1, 0, 10), wr("b", 1, 2, 20, 30)},
			nil)
		for i, o := range obsRaw {
			if i >= len(agentsRaw) || i > 20 {
				break
			}
			ag := 1 + int(agentsRaw[i])%2
			var ids []string
			seen := map[uint8]bool{}
			for _, x := range o {
				x %= 4
				if !seen[x] {
					seen[x] = true
					ids = append(ids, string(rune('a'+x)))
				}
			}
			tr.Reads = append(tr.Reads, rd(ag, 100+40*i, 120+40*i, ids...))
		}

		// Batch counts.
		batch := map[Anomaly]int{}
		for _, v := range CheckReadYourWrites(tr) {
			batch[v.Anomaly]++
		}
		for _, v := range CheckMonotonicWrites(tr) {
			batch[v.Anomaly]++
		}
		for _, v := range CheckMonotonicReads(tr) {
			batch[v.Anomaly]++
		}

		// Stream counts, replayed in timestamp order (reads are already
		// ordered by construction; writes first as they complete before
		// reads).
		s := NewStream()
		for _, w := range tr.Writes {
			s.ObserveWrite(w)
		}
		stream := map[Anomaly]int{}
		for _, r := range tr.Reads {
			for _, v := range s.ObserveRead(r) {
				stream[v.Anomaly]++
			}
		}
		return batch[ReadYourWrites] == stream[ReadYourWrites] &&
			batch[MonotonicWrites] == stream[MonotonicWrites] &&
			batch[MonotonicReads] == stream[MonotonicReads]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
