package core

import (
	"testing"

	"conprobe/internal/trace"
)

// FuzzDivergencePredicates checks the algebraic invariants of the two
// divergence conditions on arbitrary sequences: symmetry, irreflexivity,
// and subset behavior.
func FuzzDivergencePredicates(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{2, 1, 0})
	f.Add([]byte{}, []byte{1})
	f.Add([]byte{3, 3, 3}, []byte{3})
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{5, 0})

	f.Fuzz(func(t *testing.T, a, b []byte) {
		s1 := seqFromBytes(a)
		s2 := seqFromBytes(b)

		if ContentDiverged(s1, s2) != ContentDiverged(s2, s1) {
			t.Fatal("content divergence is not symmetric")
		}
		if OrderDiverged(s1, s2) != OrderDiverged(s2, s1) {
			t.Fatal("order divergence is not symmetric")
		}
		if ContentDiverged(s1, s1) {
			t.Fatal("sequence content-diverges from itself")
		}
		if OrderDiverged(s1, s1) {
			t.Fatal("sequence order-diverges from itself")
		}
		// A prefix never content-diverges from its extension and never
		// order-diverges either.
		if len(s1) > 1 {
			prefix := s1[:len(s1)/2]
			if ContentDiverged(prefix, s1) {
				t.Fatal("prefix content-diverges from extension")
			}
			if OrderDiverged(prefix, s1) {
				t.Fatal("prefix order-diverges from extension")
			}
		}
	})
}

// seqFromBytes maps bytes to a duplicate-free sequence of write IDs,
// like service read results.
func seqFromBytes(bs []byte) []trace.WriteID {
	seen := make(map[byte]bool, len(bs))
	var out []trace.WriteID
	for _, x := range bs {
		x %= 16
		if !seen[x] {
			seen[x] = true
			out = append(out, trace.WriteID(string(rune('a'+x))))
		}
	}
	return out
}
