package core

import (
	"bytes"
	"io"
	"testing"

	"conprobe/internal/trace"
)

// FuzzDivergencePredicates checks the algebraic invariants of the two
// divergence conditions on arbitrary sequences: symmetry, irreflexivity,
// and subset behavior.
func FuzzDivergencePredicates(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{2, 1, 0})
	f.Add([]byte{}, []byte{1})
	f.Add([]byte{3, 3, 3}, []byte{3})
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{5, 0})

	f.Fuzz(func(t *testing.T, a, b []byte) {
		s1 := seqFromBytes(a)
		s2 := seqFromBytes(b)

		if ContentDiverged(s1, s2) != ContentDiverged(s2, s1) {
			t.Fatal("content divergence is not symmetric")
		}
		if OrderDiverged(s1, s2) != OrderDiverged(s2, s1) {
			t.Fatal("order divergence is not symmetric")
		}
		if ContentDiverged(s1, s1) {
			t.Fatal("sequence content-diverges from itself")
		}
		if OrderDiverged(s1, s1) {
			t.Fatal("sequence order-diverges from itself")
		}
		// A prefix never content-diverges from its extension and never
		// order-diverges either.
		if len(s1) > 1 {
			prefix := s1[:len(s1)/2]
			if ContentDiverged(prefix, s1) {
				t.Fatal("prefix content-diverges from extension")
			}
			if OrderDiverged(prefix, s1) {
				t.Fatal("prefix order-diverges from extension")
			}
		}
	})
}

// FuzzCheckTest runs the full checker suite over arbitrary decoded
// traces: no input may panic it, and the collection-fault accounting
// must stay consistent with the per-agent maps. Seeds include traces
// carrying the resilience-era SkippedOps/RetriedOps/BreakerTrips
// fields, which the checkers must tolerate alongside partial reads.
func FuzzCheckTest(f *testing.F) {
	f.Add([]byte(`{"test_id":1,"kind":1,"agents":3,` +
		`"writes":[{"id":"m1","agent":1,"seq":1}],` +
		`"reads":[{"agent":2,"observed":["m1"]},{"agent":3,"observed":[]}],` +
		`"failed_ops":{"2":1},"skipped_ops":{"3":2},"retried_ops":{"1":4},` +
		`"breaker_trips":{"3":1}}`))
	f.Add([]byte(`{"test_id":2,"kind":2,"agents":2,` +
		`"writes":[{"id":"a","agent":1,"seq":1},{"id":"b","agent":2,"seq":1}],` +
		`"reads":[{"agent":1,"observed":["a","b"]},{"agent":2,"observed":["b","a"]}],` +
		`"skipped_ops":{"1":1},"retried_ops":{"2":3}}`))
	f.Add([]byte(`{"kind":1,"agents":1,"reads":[{"agent":1}]}`))
	f.Add([]byte(`{"kind":2,"agents":3,"retried_ops":{"9":-1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := trace.NewReader(bytes.NewReader(data))
		for {
			tr, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			vs := CheckTest(tr)
			// Grouping must partition the violations exactly.
			n := 0
			for _, g := range ByAnomaly(vs) {
				n += len(g)
			}
			if n != len(vs) {
				t.Fatalf("ByAnomaly groups %d violations, CheckTest found %d", n, len(vs))
			}
			// Divergence windows must not panic on the same trace.
			_ = ContentDivergenceWindows(tr)
			_ = OrderDivergenceWindows(tr)
			// Collection faults are exactly the failed+skipped sum.
			want := 0
			for _, c := range tr.FailedOps {
				want += c
			}
			for _, c := range tr.SkippedOps {
				want += c
			}
			if got := tr.CollectionFaults(); got != want {
				t.Fatalf("CollectionFaults() = %d, want %d", got, want)
			}
		}
	})
}

// seqFromBytes maps bytes to a duplicate-free sequence of write IDs,
// like service read results.
func seqFromBytes(bs []byte) []trace.WriteID {
	seen := make(map[byte]bool, len(bs))
	var out []trace.WriteID
	for _, x := range bs {
		x %= 16
		if !seen[x] {
			seen[x] = true
			out = append(out, trace.WriteID(string(rune('a'+x))))
		}
	}
	return out
}
