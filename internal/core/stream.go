package core

import (
	"sort"
	"sync"

	"conprobe/internal/trace"
)

// Stream is an online anomaly detector: operations are fed as they
// complete and violations are reported by the read that exposes them.
// It powers live monitoring (cmd/conwatch), where waiting for a full
// test trace is not an option.
//
// Session guarantees are evaluated exactly as the batch checkers do.
// Divergence anomalies are edge-triggered: a violation is emitted when a
// pair of agents' most recent reads enters the divergence condition, and
// again only after the pair has converged in between. Windows are not
// computed online — they need the clock-delta-corrected timeline and are
// left to the offline analysis.
type Stream struct {
	mu sync.Mutex

	// writes by writer, in issue order.
	writes map[trace.AgentID][]trace.Write
	byID   map[trace.WriteID]trace.Write
	// seen is each agent's monotonic-reads high water.
	seen map[trace.AgentID]map[trace.WriteID]bool
	// latest is each agent's most recent read sequence.
	latest map[trace.AgentID][]trace.WriteID
	// readCount indexes reads per agent.
	readCount map[trace.AgentID]int
	// diverged tracks which pairs are currently in each condition.
	contentDiv map[Pair]bool
	orderDiv   map[Pair]bool
}

// NewStream returns an empty online detector.
func NewStream() *Stream {
	return &Stream{
		writes:     make(map[trace.AgentID][]trace.Write),
		byID:       make(map[trace.WriteID]trace.Write),
		seen:       make(map[trace.AgentID]map[trace.WriteID]bool),
		latest:     make(map[trace.AgentID][]trace.WriteID),
		readCount:  make(map[trace.AgentID]int),
		contentDiv: make(map[Pair]bool),
		orderDiv:   make(map[Pair]bool),
	}
}

// ObserveWrite records a completed write.
func (s *Stream) ObserveWrite(w trace.Write) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes[w.Agent] = append(s.writes[w.Agent], w)
	sort.SliceStable(s.writes[w.Agent], func(i, j int) bool {
		return s.writes[w.Agent][i].Seq < s.writes[w.Agent][j].Seq
	})
	s.byID[w.ID] = w
}

// ObserveRead records a completed read and returns the violations it
// exposes.
func (s *Stream) ObserveRead(r trace.Read) []Violation {
	s.mu.Lock()
	defer s.mu.Unlock()

	idx := s.readCount[r.Agent]
	s.readCount[r.Agent]++
	var out []Violation

	// Read Your Writes: own completed writes must be present.
	for _, w := range s.writes[r.Agent] {
		if w.Returned.After(r.Invoked) {
			continue
		}
		if !readContains(&r, w.ID) {
			out = append(out, Violation{
				Anomaly: ReadYourWrites, Agent: r.Agent, ReadIndex: idx, Write: w.ID,
			})
		}
	}

	// Monotonic Writes: every writer's issue order must be respected.
	for _, ws := range s.writes {
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				py := r.Position(ws[j].ID)
				if py < 0 {
					continue
				}
				px := r.Position(ws[i].ID)
				if px < 0 || py < px {
					out = append(out, Violation{
						Anomaly: MonotonicWrites, Agent: r.Agent, ReadIndex: idx,
						Write: ws[i].ID, Write2: ws[j].ID,
					})
				}
			}
		}
	}

	// Monotonic Reads: nothing this agent has seen may disappear.
	if s.seen[r.Agent] == nil {
		s.seen[r.Agent] = make(map[trace.WriteID]bool)
	}
	for id := range s.seen[r.Agent] {
		if !readContains(&r, id) {
			out = append(out, Violation{
				Anomaly: MonotonicReads, Agent: r.Agent, ReadIndex: idx, Write: id,
			})
		}
	}
	for _, id := range r.Observed {
		s.seen[r.Agent][id] = true
	}

	// Writes Follows Reads: dependent writes require their triggers.
	for _, id := range r.Observed {
		w, ok := s.byID[id]
		if !ok || w.Trigger == "" {
			continue
		}
		if !readContains(&r, w.Trigger) {
			out = append(out, Violation{
				Anomaly: WritesFollowsReads, Agent: r.Agent, ReadIndex: idx,
				Write: w.Trigger, Write2: w.ID,
			})
		}
	}

	// Divergence against every other agent's latest read,
	// edge-triggered.
	s.latest[r.Agent] = append([]trace.WriteID(nil), r.Observed...)
	for other, seq := range s.latest {
		if other == r.Agent {
			continue
		}
		p := MakePair(r.Agent, other)
		cd := contentDiverged(r.Observed, seq)
		if cd && !s.contentDiv[p] {
			out = append(out, Violation{
				Anomaly: ContentDivergence, Agent: p.A, Other: p.B, ReadIndex: idx,
			})
		}
		s.contentDiv[p] = cd
		x, y, od := orderDiverged(r.Observed, seq)
		if od && !s.orderDiv[p] {
			out = append(out, Violation{
				Anomaly: OrderDivergence, Agent: p.A, Other: p.B, ReadIndex: idx,
				Write: x, Write2: y,
			})
		}
		s.orderDiv[p] = od
	}
	return out
}

// Diverged reports whether the pair is currently content- or
// order-diverged according to the latest reads.
func (s *Stream) Diverged(a, b trace.AgentID) (content, order bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := MakePair(a, b)
	return s.contentDiv[p], s.orderDiv[p]
}

// Reset clears all state (e.g. between monitoring epochs).
func (s *Stream) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes = make(map[trace.AgentID][]trace.Write)
	s.byID = make(map[trace.WriteID]trace.Write)
	s.seen = make(map[trace.AgentID]map[trace.WriteID]bool)
	s.latest = make(map[trace.AgentID][]trace.WriteID)
	s.readCount = make(map[trace.AgentID]int)
	s.contentDiv = make(map[Pair]bool)
	s.orderDiv = make(map[Pair]bool)
}

func readContains(r *trace.Read, id trace.WriteID) bool {
	return r.Contains(id)
}
