package core

import (
	"sort"
	"testing"

	"conprobe/internal/trace"
)

// conformance scenarios: canonical operation histories with the exact
// set of anomalies they must (and must not) trigger. Sources: the
// paper's Section III/IV examples and the session-guarantee definitions
// of Terry et al. (PDIS'94). Every scenario is checked against the batch
// checkers and, for the session guarantees, replayed through the
// streaming checker, which must agree.
type scenario struct {
	name   string
	agents int
	writes []trace.Write
	reads  []trace.Read
	// want is the exact set of anomalies with at least one violation.
	want []Anomaly
}

func scenarios() []scenario {
	w := func(id string, agent, seq, inv, ret int, trigger string) trace.Write {
		wr := wr(id, agent, seq, inv, ret)
		wr.Trigger = trace.WriteID(trigger)
		return wr
	}
	return []scenario{
		{
			name:   "clean linearizable history",
			agents: 2,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 2, 1, 100, 150)},
			reads: []trace.Read{
				rd(1, 200, 240, "m1", "m2"),
				rd(2, 200, 240, "m1", "m2"),
				rd(1, 300, 340, "m1", "m2"),
			},
			want: nil,
		},
		{
			name:   "paper §IV: RYW — agent misses its own M1",
			agents: 1,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50)},
			reads:  []trace.Read{rd(1, 100, 140)},
			want:   []Anomaly{ReadYourWrites},
		},
		{
			name:   "paper §IV: MW — M2 visible without M1",
			agents: 2,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
			reads:  []trace.Read{rd(2, 200, 240, "m2")},
			want:   []Anomaly{MonotonicWrites},
		},
		{
			name:   "paper §IV: MW — both visible in reverse order",
			agents: 2,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
			reads:  []trace.Read{rd(2, 200, 240, "m2", "m1")},
			want:   []Anomaly{MonotonicWrites},
		},
		{
			name:   "paper §IV: MR — M observed then gone",
			agents: 1,
			writes: nil,
			reads: []trace.Read{
				rd(1, 0, 40, "m1"),
				rd(1, 100, 140),
			},
			want: []Anomaly{MonotonicReads},
		},
		{
			name:   "paper §IV: WFR — M3 without its trigger M2",
			agents: 3,
			writes: []trace.Write{
				wr("m2", 1, 1, 0, 50),
				w("m3", 2, 1, 100, 150, "m2"),
			},
			reads: []trace.Read{rd(3, 200, 240, "m3")},
			want:  []Anomaly{WritesFollowsReads, MonotonicWrites}, // m3 without... no: m2,m3 different writers; MW not expected
		},
		{
			name:   "paper §V example: content divergence M1 vs M2",
			agents: 2,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 2, 1, 0, 50)},
			reads: []trace.Read{
				rd(1, 100, 140, "m1"),
				rd(2, 100, 140, "m2"),
			},
			want: []Anomaly{ReadYourWrites, ContentDivergence},
			// each agent sees only its own write: RYW holds for both
			// (own writes visible), so only CD... but agent1's read has
			// m1 (own) — no RYW. Corrected below in normalization.
		},
		{
			name:   "paper §V example: order divergence (M1,M2) vs (M2,M1)",
			agents: 2,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 2, 1, 0, 50)},
			reads: []trace.Read{
				rd(1, 100, 140, "m1", "m2"),
				rd(2, 100, 140, "m2", "m1"),
			},
			want: []Anomaly{OrderDivergence, MonotonicWrites},
			// note: no MW — the pair has different writers. Normalized
			// below.
		},
		{
			name:   "Terry'94: read from a stale replica after writing",
			agents: 2,
			writes: []trace.Write{
				wr("m1", 1, 1, 0, 50),
				wr("m2", 1, 2, 60, 110),
				wr("m3", 1, 3, 120, 170),
			},
			reads: []trace.Read{
				rd(1, 200, 240, "m1", "m2", "m3"),
				rd(1, 300, 340, "m1"), // stale replica: m2, m3 gone
			},
			want: []Anomaly{ReadYourWrites, MonotonicReads},
		},
		{
			name:   "subset views are not content divergence",
			agents: 2,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 2, 1, 0, 50)},
			reads: []trace.Read{
				rd(1, 100, 140, "m1", "m2"),
				rd(2, 100, 140, "m2"), // agent2 misses m1: one-sided
			},
			want: nil,
		},
		{
			name:   "MR: write resurrects after disappearing (still one-way violations)",
			agents: 1,
			writes: nil,
			reads: []trace.Read{
				rd(1, 0, 40, "m1"),
				rd(1, 100, 140),       // m1 gone: violation
				rd(1, 200, 240, "m1"), // back: fine
				rd(1, 300, 340),       // gone again: violation
			},
			want: []Anomaly{MonotonicReads},
		},
		{
			name:   "WFR chain: both trigger pairs broken",
			agents: 3,
			writes: []trace.Write{
				wr("m2", 1, 2, 0, 50),
				w("m3", 2, 1, 100, 150, "m2"),
				wr("m4", 2, 2, 160, 210),
				w("m5", 3, 1, 300, 350, "m4"),
			},
			// Reader is agent 3, whose own write m5 is present (no RYW).
			reads: []trace.Read{rd(3, 400, 440, "m3", "m5")},
			want:  []Anomaly{WritesFollowsReads},
		},
		{
			name:   "same-second reversal observed by everyone (FB Group)",
			agents: 3,
			writes: []trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
			reads: []trace.Read{
				rd(1, 200, 240, "m2", "m1"),
				rd(2, 200, 240, "m2", "m1"),
				rd(3, 200, 240, "m2", "m1"),
			},
			want: []Anomaly{MonotonicWrites},
			// All readers see the same reversed order: MW everywhere but
			// no order divergence (the sequences agree).
		},
		{
			name:   "zero-window divergence (paper end of §IV)",
			agents: 2,
			writes: []trace.Write{wr("m1", 1, 1, 0, 40), wr("m2", 2, 1, 0, 40)},
			reads: []trace.Read{
				rd(1, 50, 90, "m1"),
				rd(1, 150, 190, "m1", "m2"),
				rd(2, 250, 290, "m2"),
				rd(2, 350, 390, "m1", "m2"),
			},
			want: []Anomaly{ContentDivergence, MonotonicReads},
			// agent2's first read misses m1 after... agent2 never saw m1
			// before, so no MR. Normalized below.
		},
	}
}

// normalizeScenario fixes the expectation notes above: expectations are
// computed from the checkers' documented semantics, and the comments in
// the table record where intuition needed correcting. This keeps the
// table honest: want lists are asserted exactly.
func normalizeScenario(s *scenario) {
	switch s.name {
	case "paper §IV: WFR — M3 without its trigger M2":
		s.want = []Anomaly{WritesFollowsReads}
	case "paper §V example: content divergence M1 vs M2":
		s.want = []Anomaly{ContentDivergence}
	case "paper §V example: order divergence (M1,M2) vs (M2,M1)":
		s.want = []Anomaly{OrderDivergence}
	case "zero-window divergence (paper end of §IV)":
		s.want = []Anomaly{ContentDivergence}
	}
}

func anomalySet(vs []Violation) []Anomaly {
	seen := map[Anomaly]bool{}
	for _, v := range vs {
		seen[v.Anomaly] = true
	}
	out := make([]Anomaly, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameAnomalies(a, b []Anomaly) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConformanceScenariosBatch(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		normalizeScenario(&sc)
		t.Run(sc.name, func(t *testing.T) {
			tr := newTrace(sc.agents, sc.writes, sc.reads)
			got := anomalySet(CheckTest(tr))
			want := append([]Anomaly(nil), sc.want...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !sameAnomalies(got, want) {
				t.Fatalf("anomalies = %v, want %v", got, want)
			}
		})
	}
}

func TestConformanceScenariosStream(t *testing.T) {
	session := []Anomaly{ReadYourWrites, MonotonicWrites, MonotonicReads, WritesFollowsReads}
	for _, sc := range scenarios() {
		sc := sc
		normalizeScenario(&sc)
		t.Run(sc.name, func(t *testing.T) {
			s := NewStream()
			for _, w := range sc.writes {
				s.ObserveWrite(w)
			}
			seen := map[Anomaly]bool{}
			// Replay reads in invocation order across agents.
			tr := newTrace(sc.agents, sc.writes, sc.reads)
			var ordered []trace.Read
			for _, rs := range tr.ReadsByAgent() {
				ordered = append(ordered, rs...)
			}
			sort.Slice(ordered, func(i, j int) bool {
				return ordered[i].Invoked.Before(ordered[j].Invoked)
			})
			for _, r := range ordered {
				for _, v := range s.ObserveRead(r) {
					seen[v.Anomaly] = true
				}
			}
			// The stream must agree on the session guarantees (divergence
			// is edge-triggered on latest reads, so the batch pairwise
			// semantics can differ legitimately).
			for _, a := range session {
				want := false
				for _, wa := range sc.want {
					if wa == a {
						want = true
					}
				}
				if seen[a] != want {
					t.Fatalf("stream %v = %v, want %v", a, seen[a], want)
				}
			}
		})
	}
}
