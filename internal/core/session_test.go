package core

import (
	"testing"
	"time"

	"conprobe/internal/trace"
)

var base = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }

// wr builds a completed write.
func wr(id string, agent, seq, invokedMS, returnedMS int) trace.Write {
	return trace.Write{
		ID: trace.WriteID(id), Agent: trace.AgentID(agent), Seq: seq,
		Invoked: at(invokedMS), Returned: at(returnedMS),
	}
}

// rd builds a read observing the given ids.
func rd(agent, invokedMS, returnedMS int, ids ...string) trace.Read {
	obs := make([]trace.WriteID, len(ids))
	for i, s := range ids {
		obs[i] = trace.WriteID(s)
	}
	return trace.Read{
		Agent: trace.AgentID(agent), Invoked: at(invokedMS),
		Returned: at(returnedMS), Observed: obs,
	}
}

func newTrace(agents int, writes []trace.Write, reads []trace.Read) *trace.TestTrace {
	return &trace.TestTrace{
		TestID: 1, Kind: trace.Test1, Service: "test", Started: base,
		Agents: agents, Writes: writes, Reads: reads,
	}
}

func countAnomaly(vs []Violation, a Anomaly) int {
	n := 0
	for _, v := range vs {
		if v.Anomaly == a {
			n++
		}
	}
	return n
}

func TestRYWDetectsMissingOwnWrite(t *testing.T) {
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 50)},
		[]trace.Read{rd(1, 100, 140)}, // empty read after write completed
	)
	vs := CheckReadYourWrites(tr)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	v := vs[0]
	if v.Anomaly != ReadYourWrites || v.Agent != 1 || v.Write != "m1" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestRYWNoViolationWhenVisible(t *testing.T) {
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
		[]trace.Read{rd(1, 200, 240, "m1", "m2")},
	)
	if vs := CheckReadYourWrites(tr); len(vs) != 0 {
		t.Fatalf("unexpected violations: %+v", vs)
	}
}

func TestRYWIgnoresInFlightWrites(t *testing.T) {
	// Read invoked before the write completed: no obligation.
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 500)},
		[]trace.Read{rd(1, 100, 140)},
	)
	if vs := CheckReadYourWrites(tr); len(vs) != 0 {
		t.Fatalf("in-flight write must not count: %+v", vs)
	}
}

func TestRYWIgnoresOtherAgentsWrites(t *testing.T) {
	tr := newTrace(2,
		[]trace.Write{wr("m1", 2, 1, 0, 50)},
		[]trace.Read{rd(1, 100, 140)},
	)
	if vs := CheckReadYourWrites(tr); len(vs) != 0 {
		t.Fatalf("other agents' writes must not count: %+v", vs)
	}
}

func TestRYWCountsPerReadPerWrite(t *testing.T) {
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 51, 90)},
		[]trace.Read{rd(1, 100, 140), rd(1, 200, 240, "m1")},
	)
	// Read 1 misses m1+m2, read 2 misses m2: 3 observations.
	if got := len(CheckReadYourWrites(tr)); got != 3 {
		t.Fatalf("got %d observations, want 3", got)
	}
}

func TestMWDetectsMissingEarlierWrite(t *testing.T) {
	// Paper's example: agent 1 writes M1 then M2; a read sees only M2.
	tr := newTrace(2,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
		[]trace.Read{rd(2, 200, 240, "m2")},
	)
	vs := CheckMonotonicWrites(tr)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.Write != "m1" || v.Write2 != "m2" || v.Agent != 2 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestMWDetectsReorderedPair(t *testing.T) {
	// Both visible but in reverse order (the FB Group same-second case).
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
		[]trace.Read{rd(1, 200, 240, "m2", "m1")},
	)
	vs := CheckMonotonicWrites(tr)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
}

func TestMWNoViolationInOrder(t *testing.T) {
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
		[]trace.Read{rd(1, 200, 240, "m1", "m2")},
	)
	if vs := CheckMonotonicWrites(tr); len(vs) != 0 {
		t.Fatalf("unexpected violations: %+v", vs)
	}
}

func TestMWNoViolationWhenLaterWriteInvisible(t *testing.T) {
	// Only the earlier write visible: fine (y ∈ S is required).
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
		[]trace.Read{rd(1, 200, 240, "m1")},
	)
	if vs := CheckMonotonicWrites(tr); len(vs) != 0 {
		t.Fatalf("unexpected violations: %+v", vs)
	}
}

func TestMWCrossAgentPairsNotChecked(t *testing.T) {
	// Writes by different agents have no mutual MW constraint.
	tr := newTrace(2,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 2, 1, 60, 110)},
		[]trace.Read{rd(1, 200, 240, "m2")},
	)
	if vs := CheckMonotonicWrites(tr); len(vs) != 0 {
		t.Fatalf("cross-agent pair flagged: %+v", vs)
	}
}

func TestMWReaderCanBeAnyClient(t *testing.T) {
	// The reordering is visible to a different client than the writer.
	tr := newTrace(3,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110)},
		[]trace.Read{rd(3, 200, 240, "m2", "m1")},
	)
	vs := CheckMonotonicWrites(tr)
	if len(vs) != 1 || vs[0].Agent != 3 {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestMRDetectsDisappearingWrite(t *testing.T) {
	tr := newTrace(1, nil,
		[]trace.Read{
			rd(1, 0, 40, "m1", "m2"),
			rd(1, 100, 140, "m2"),
		})
	vs := CheckMonotonicReads(tr)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	if vs[0].Write != "m1" || vs[0].ReadIndex != 1 {
		t.Fatalf("violation = %+v", vs[0])
	}
}

func TestMRHighWaterCountsDisappearanceOncePerRead(t *testing.T) {
	tr := newTrace(1, nil,
		[]trace.Read{
			rd(1, 0, 40, "m1"),
			rd(1, 100, 140, "m1"),
			rd(1, 200, 240), // m1 gone: 1 observation
			rd(1, 300, 340), // still gone: another observation
		})
	if got := len(CheckMonotonicReads(tr)); got != 2 {
		t.Fatalf("got %d observations, want 2", got)
	}
}

func TestMRSeparateAgentsIndependent(t *testing.T) {
	// Agent 2 never saw m1, so its empty read is fine.
	tr := newTrace(2, nil,
		[]trace.Read{
			rd(1, 0, 40, "m1"),
			rd(2, 100, 140),
			rd(1, 200, 240, "m1"),
		})
	if vs := CheckMonotonicReads(tr); len(vs) != 0 {
		t.Fatalf("unexpected violations: %+v", vs)
	}
}

func TestWFRDetectsEffectWithoutCause(t *testing.T) {
	// M3 (triggered by observing M2) visible without M2.
	w3 := wr("m3", 2, 1, 300, 350)
	w3.Trigger = "m2"
	tr := newTrace(3,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110), w3},
		[]trace.Read{rd(3, 400, 440, "m1", "m3")},
	)
	vs := CheckWritesFollowsReads(tr)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	if vs[0].Write != "m2" || vs[0].Write2 != "m3" || vs[0].Agent != 3 {
		t.Fatalf("violation = %+v", vs[0])
	}
}

func TestWFRNoViolationWhenCausePresent(t *testing.T) {
	w3 := wr("m3", 2, 1, 300, 350)
	w3.Trigger = "m2"
	tr := newTrace(3,
		[]trace.Write{wr("m2", 1, 2, 60, 110), w3},
		[]trace.Read{rd(3, 400, 440, "m2", "m3")},
	)
	if vs := CheckWritesFollowsReads(tr); len(vs) != 0 {
		t.Fatalf("unexpected violations: %+v", vs)
	}
}

func TestWFRNoTriggersNoChecks(t *testing.T) {
	tr := newTrace(1,
		[]trace.Write{wr("m1", 1, 1, 0, 50)},
		[]trace.Read{rd(1, 100, 140)},
	)
	if vs := CheckWritesFollowsReads(tr); vs != nil {
		t.Fatalf("expected nil, got %+v", vs)
	}
}

func TestWFRUntriggeredWriteNotChecked(t *testing.T) {
	// m3 visible without m2, but m3 declares no trigger: no WFR anomaly.
	tr := newTrace(2,
		[]trace.Write{wr("m2", 1, 1, 0, 50), wr("m3", 2, 1, 300, 350)},
		[]trace.Read{rd(2, 400, 440, "m3")},
	)
	if vs := CheckWritesFollowsReads(tr); len(vs) != 0 {
		t.Fatalf("unexpected violations: %+v", vs)
	}
}

func TestCheckTestAggregatesAllCheckers(t *testing.T) {
	w3 := wr("m3", 2, 1, 300, 350)
	w3.Trigger = "m2"
	tr := newTrace(2,
		[]trace.Write{wr("m1", 1, 1, 0, 50), wr("m2", 1, 2, 60, 110), w3},
		[]trace.Read{
			rd(1, 120, 160, "m2"),             // RYW (m1 missing) + MW (m1 before m2)
			rd(1, 400, 440, "m1", "m2"),       // fine
			rd(2, 400, 440, "m3"),             // WFR (m3 without m2) + MW (m2 missing... no: m2 not by agent2; m1,m2 by agent1: m2∈S? no. m3 alone: no MW pair)
			rd(2, 500, 540, "m1", "m2", "m3"), // fine
		})
	vs := CheckTest(tr)
	grouped := ByAnomaly(vs)
	if len(grouped[ReadYourWrites]) == 0 {
		t.Error("expected RYW violation")
	}
	if len(grouped[MonotonicWrites]) == 0 {
		t.Error("expected MW violation")
	}
	if len(grouped[WritesFollowsReads]) != 1 {
		t.Errorf("expected 1 WFR violation, got %d", len(grouped[WritesFollowsReads]))
	}
}

func TestAnomalyStrings(t *testing.T) {
	names := map[Anomaly]string{
		ReadYourWrites:     "read your writes",
		MonotonicWrites:    "monotonic writes",
		MonotonicReads:     "monotonic reads",
		WritesFollowsReads: "writes follows reads",
		ContentDivergence:  "content divergence",
		OrderDivergence:    "order divergence",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if Anomaly(99).String() == "" {
		t.Error("unknown anomaly should stringify")
	}
	if len(AllAnomalies()) != 6 {
		t.Error("AllAnomalies should list 6")
	}
}

func TestViolationString(t *testing.T) {
	tests := []struct {
		v    Violation
		want string
	}{
		{Violation{Anomaly: ReadYourWrites, Agent: 1, ReadIndex: 2, Write: "m1"},
			"read your writes at agent 1 read #2: m1 missing"},
		{Violation{Anomaly: MonotonicWrites, Agent: 3, ReadIndex: 0, Write: "m1", Write2: "m2"},
			"monotonic writes at agent 3 read #0: m2 observed without/after m1"},
		{Violation{Anomaly: ContentDivergence, Agent: 1, Other: 2},
			"content divergence between agents 1 and 2"},
		{Violation{Anomaly: OrderDivergence, Agent: 1, Other: 3, Write: "a", Write2: "b"},
			"order divergence between agents 1 and 3 (a vs b)"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
