// Package core implements the consistency-anomaly definitions of Section
// III of "Characterizing the Consistency of Online Services" (DSN 2016)
// as checkers over collected test traces.
//
// Six anomalies are covered. Four are session-guarantee violations —
// Read Your Writes, Monotonic Writes, Monotonic Reads and Writes Follows
// Reads — detected per observing agent. Two are divergence anomalies
// between pairs of agents — Content Divergence and Order Divergence —
// together with their quantitative counterparts, the content and order
// divergence windows, computed on the clock-delta-corrected global
// timeline exactly as Section IV prescribes.
//
// All checkers are pure functions over trace.TestTrace values, so the
// same code path analyzes simulator output and live-collected JSONL.
package core

import (
	"fmt"

	"conprobe/internal/trace"
)

// Anomaly enumerates the consistency anomalies of Section III.
type Anomaly int

// The anomalies, in the order the paper defines them.
const (
	ReadYourWrites Anomaly = iota + 1
	MonotonicWrites
	MonotonicReads
	WritesFollowsReads
	ContentDivergence
	OrderDivergence
)

// SessionAnomalies lists the four session-guarantee anomalies.
func SessionAnomalies() []Anomaly {
	return []Anomaly{ReadYourWrites, MonotonicWrites, MonotonicReads, WritesFollowsReads}
}

// DivergenceAnomalies lists the two divergence anomalies.
func DivergenceAnomalies() []Anomaly {
	return []Anomaly{ContentDivergence, OrderDivergence}
}

// AllAnomalies lists every anomaly in definition order.
func AllAnomalies() []Anomaly {
	return append(SessionAnomalies(), DivergenceAnomalies()...)
}

// String returns the paper's name for the anomaly.
func (a Anomaly) String() string {
	switch a {
	case ReadYourWrites:
		return "read your writes"
	case MonotonicWrites:
		return "monotonic writes"
	case MonotonicReads:
		return "monotonic reads"
	case WritesFollowsReads:
		return "writes follows reads"
	case ContentDivergence:
		return "content divergence"
	case OrderDivergence:
		return "order divergence"
	default:
		return fmt.Sprintf("anomaly(%d)", int(a))
	}
}

// Violation is one detected occurrence of an anomaly.
type Violation struct {
	Anomaly Anomaly
	// Agent is the observing agent: the reader whose read exposed the
	// anomaly (for session guarantees), or the first agent of the
	// diverging pair.
	Agent trace.AgentID
	// Other is the second agent of a diverging pair; zero for session
	// anomalies.
	Other trace.AgentID
	// ReadIndex is the index (within the observing agent's read sequence)
	// of the read that exposed the anomaly. For divergence anomalies it
	// refers to Agent's read.
	ReadIndex int
	// Write is the offending write: the one missing or observed out of
	// order. Write2, when set, is its counterpart (the later write of a
	// monotonic-writes pair, or the write only the other agent saw).
	Write  trace.WriteID
	Write2 trace.WriteID
}

// CheckTest runs every checker applicable to the trace's test kind and
// returns all detected violations. Test 1 exposes the session guarantees;
// Test 2 exposes divergence; both kinds are checked for everything, as any
// trace can in principle exhibit any anomaly.
func CheckTest(tr *trace.TestTrace) []Violation {
	var out []Violation
	out = append(out, CheckReadYourWrites(tr)...)
	out = append(out, CheckMonotonicWrites(tr)...)
	out = append(out, CheckMonotonicReads(tr)...)
	out = append(out, CheckWritesFollowsReads(tr)...)
	out = append(out, CheckContentDivergence(tr)...)
	out = append(out, CheckOrderDivergence(tr)...)
	return out
}

// ByAnomaly groups violations by anomaly type.
func ByAnomaly(vs []Violation) map[Anomaly][]Violation {
	out := make(map[Anomaly][]Violation)
	for _, v := range vs {
		out[v.Anomaly] = append(out[v.Anomaly], v)
	}
	return out
}

// String renders a violation for logs and live monitoring output.
func (v Violation) String() string {
	switch v.Anomaly {
	case ContentDivergence, OrderDivergence:
		if v.Write != "" {
			return fmt.Sprintf("%s between agents %d and %d (%s vs %s)",
				v.Anomaly, v.Agent, v.Other, v.Write, v.Write2)
		}
		return fmt.Sprintf("%s between agents %d and %d", v.Anomaly, v.Agent, v.Other)
	case MonotonicWrites, WritesFollowsReads:
		return fmt.Sprintf("%s at agent %d read #%d: %s observed without/after %s",
			v.Anomaly, v.Agent, v.ReadIndex, v.Write2, v.Write)
	default:
		return fmt.Sprintf("%s at agent %d read #%d: %s missing",
			v.Anomaly, v.Agent, v.ReadIndex, v.Write)
	}
}
