package core

import "conprobe/internal/trace"

// CheckReadYourWrites detects Read Your Writes violations:
//
//	∃ x ∈ W : x ∉ S
//
// where W is the set of writes completed by a client before it invoked a
// read returning S. One violation is reported per (read, missing write).
func CheckReadYourWrites(tr *trace.TestTrace) []Violation {
	var out []Violation
	writes := tr.WritesByAgent()
	for agent, reads := range tr.ReadsByAgent() {
		for ri := range reads {
			r := &reads[ri]
			for _, w := range writes[agent] {
				// Only writes acknowledged before the read was issued
				// are required to be visible.
				if w.Returned.After(r.Invoked) {
					continue
				}
				if !r.Contains(w.ID) {
					out = append(out, Violation{
						Anomaly:   ReadYourWrites,
						Agent:     agent,
						ReadIndex: ri,
						Write:     w.ID,
					})
				}
			}
		}
	}
	return out
}

// CheckMonotonicWrites detects Monotonic Writes violations:
//
//	∃ x, y ∈ W : W(x) ≺ W(y) ∧ y ∈ S ∧ (x ∉ S ∨ S(y) ≺ S(x))
//
// for W the issue-ordered writes of any single client and S the sequence
// returned by a read issued by any client. One violation is reported per
// (read, offending write pair).
func CheckMonotonicWrites(tr *trace.TestTrace) []Violation {
	var out []Violation
	writes := tr.WritesByAgent()
	for reader, reads := range tr.ReadsByAgent() {
		for ri := range reads {
			r := &reads[ri]
			for _, ws := range writes {
				for i := 0; i < len(ws); i++ {
					for j := i + 1; j < len(ws); j++ {
						x, y := ws[i], ws[j]
						py := r.Position(y.ID)
						if py < 0 {
							continue // y not visible: no constraint
						}
						px := r.Position(x.ID)
						if px < 0 || py < px {
							out = append(out, Violation{
								Anomaly:   MonotonicWrites,
								Agent:     reader,
								ReadIndex: ri,
								Write:     x.ID,
								Write2:    y.ID,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// CheckMonotonicReads detects Monotonic Reads violations:
//
//	∃ x ∈ S1 : x ∉ S2
//
// for S1, S2 returned by two reads of the same client, in that order. A
// high-water implementation is used: each read is compared against the set
// of all writes the client observed in earlier reads, and one violation is
// reported per (read, disappeared write). This counts each disappearance
// once rather than once per earlier read that saw the write.
func CheckMonotonicReads(tr *trace.TestTrace) []Violation {
	var out []Violation
	for agent, reads := range tr.ReadsByAgent() {
		seen := make(map[trace.WriteID]bool)
		for ri := range reads {
			r := &reads[ri]
			for id := range seen {
				if !r.Contains(id) {
					out = append(out, Violation{
						Anomaly:   MonotonicReads,
						Agent:     agent,
						ReadIndex: ri,
						Write:     id,
					})
				}
			}
			for _, id := range r.Observed {
				seen[id] = true
			}
		}
	}
	return out
}

// CheckWritesFollowsReads detects Writes Follows Reads violations:
//
//	w ∈ S2 ∧ ∃ x ∈ S1 : x ∉ S2
//
// where w is a write issued by a client after observing x in a read
// returning S1, and S2 is returned by a read issued by any client. The
// causal dependency is recorded by the test harness in Write.Trigger
// (Test 1 sets M2→M3 and M4→M5, the only designated trigger pairs). One
// violation is reported per (read, dependent write).
func CheckWritesFollowsReads(tr *trace.TestTrace) []Violation {
	var deps []trace.Write
	for _, w := range tr.Writes {
		if w.Trigger != "" {
			deps = append(deps, w)
		}
	}
	if len(deps) == 0 {
		return nil
	}
	var out []Violation
	for reader, reads := range tr.ReadsByAgent() {
		for ri := range reads {
			r := &reads[ri]
			for _, w := range deps {
				if r.Contains(w.ID) && !r.Contains(w.Trigger) {
					out = append(out, Violation{
						Anomaly:   WritesFollowsReads,
						Agent:     reader,
						ReadIndex: ri,
						Write:     w.Trigger,
						Write2:    w.ID,
					})
				}
			}
		}
	}
	return out
}
