package core

import (
	"sort"
	"time"

	"conprobe/internal/trace"
)

// Pair identifies an unordered pair of agents, normalized so A < B.
type Pair struct {
	A, B trace.AgentID
}

// MakePair returns the normalized pair for a and b.
func MakePair(a, b trace.AgentID) Pair {
	if b < a {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Pairs returns every unordered agent pair of the trace.
func Pairs(tr *trace.TestTrace) []Pair {
	var out []Pair
	for a := 1; a <= tr.Agents; a++ {
		for b := a + 1; b <= tr.Agents; b++ {
			out = append(out, Pair{A: trace.AgentID(a), B: trace.AgentID(b)})
		}
	}
	return out
}

// ContentDiverged reports the Content Divergence condition between two
// observed sequences:
//
//	∃ x ∈ S1, y ∈ S2 : x ∉ S2 ∧ y ∉ S1
//
// It is exported for white-box monitors that evaluate the condition on
// replica logs directly.
func ContentDiverged(s1, s2 []trace.WriteID) bool {
	return contentDiverged(s1, s2)
}

// OrderDiverged reports the Order Divergence condition between two
// observed sequences.
func OrderDiverged(s1, s2 []trace.WriteID) bool {
	_, _, ok := orderDiverged(s1, s2)
	return ok
}

// contentDiverged reports the Content Divergence condition:
//
//	∃ x ∈ S1, y ∈ S2 : x ∉ S2 ∧ y ∉ S1
func contentDiverged(s1, s2 []trace.WriteID) bool {
	set1 := make(map[trace.WriteID]bool, len(s1))
	for _, x := range s1 {
		set1[x] = true
	}
	onlyIn1 := false
	set2 := make(map[trace.WriteID]bool, len(s2))
	for _, y := range s2 {
		set2[y] = true
	}
	for _, x := range s1 {
		if !set2[x] {
			onlyIn1 = true
			break
		}
	}
	if !onlyIn1 {
		return false
	}
	for _, y := range s2 {
		if !set1[y] {
			return true
		}
	}
	return false
}

// orderDiverged reports the Order Divergence condition and, when true, a
// witnessing pair of writes:
//
//	∃ x, y ∈ S1 ∩ S2 : S1(x) ≺ S1(y) ∧ S2(y) ≺ S2(x)
func orderDiverged(s1, s2 []trace.WriteID) (trace.WriteID, trace.WriteID, bool) {
	pos2 := make(map[trace.WriteID]int, len(s2))
	for i, id := range s2 {
		pos2[id] = i
	}
	// Collect the common subsequence in S1 order with its S2 positions;
	// any inversion witnesses divergence.
	type elem struct {
		id trace.WriteID
		p2 int
	}
	var common []elem
	for _, id := range s1 {
		if p, ok := pos2[id]; ok {
			common = append(common, elem{id: id, p2: p})
		}
	}
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			if common[j].p2 < common[i].p2 {
				return common[i].id, common[j].id, true
			}
		}
	}
	return "", "", false
}

// CheckContentDivergence detects Content Divergence between every pair of
// agents. For each pair, each of the first agent's reads that content-
// diverges from any read of the second agent yields one violation (the
// earliest diverging counterpart is recorded).
func CheckContentDivergence(tr *trace.TestTrace) []Violation {
	return checkDivergence(tr, ContentDivergence)
}

// CheckOrderDivergence detects Order Divergence between every pair of
// agents, one violation per diverging read of the pair's first agent.
func CheckOrderDivergence(tr *trace.TestTrace) []Violation {
	return checkDivergence(tr, OrderDivergence)
}

func checkDivergence(tr *trace.TestTrace, kind Anomaly) []Violation {
	reads := tr.ReadsByAgent()
	var out []Violation
	for _, p := range Pairs(tr) {
		ra, rb := reads[p.A], reads[p.B]
		for i := range ra {
			for j := range rb {
				switch kind {
				case ContentDivergence:
					if contentDiverged(ra[i].Observed, rb[j].Observed) {
						out = append(out, Violation{
							Anomaly:   ContentDivergence,
							Agent:     p.A,
							Other:     p.B,
							ReadIndex: i,
						})
						j = len(rb) // one violation per read of A
					}
				case OrderDivergence:
					if x, y, ok := orderDiverged(ra[i].Observed, rb[j].Observed); ok {
						out = append(out, Violation{
							Anomaly:   OrderDivergence,
							Agent:     p.A,
							Other:     p.B,
							ReadIndex: i,
							Write:     x,
							Write2:    y,
						})
						j = len(rb)
					}
				}
			}
		}
	}
	return out
}

// WindowResult summarizes the divergence windows observed between one pair
// of agents in one test (Section III, quantitative metrics).
type WindowResult struct {
	Pair Pair
	// Largest is the longest contiguous interval during which the
	// divergence condition held on the corrected global timeline. The
	// paper reports this value per pair per test.
	Largest time.Duration
	// Total is the sum of all divergence intervals.
	Total time.Duration
	// Count is the number of distinct divergence intervals.
	Count int
	// Converged reports whether the condition was false after the final
	// read of the test; the paper excludes non-converged runs from its
	// CDFs and reports their fraction separately.
	Converged bool
}

// ContentDivergenceWindows computes, for every agent pair, the windows
// during which the pair's most recent reads content-diverged. Timestamps
// are corrected to reference time with the trace's clock deltas; windows
// are measured between read-completion events, mirroring the paper's
// "as determined by the most recent read" rule.
func ContentDivergenceWindows(tr *trace.TestTrace) []WindowResult {
	return divergenceWindows(tr, func(s1, s2 []trace.WriteID) bool {
		return contentDiverged(s1, s2)
	})
}

// OrderDivergenceWindows computes order-divergence windows per agent pair.
func OrderDivergenceWindows(tr *trace.TestTrace) []WindowResult {
	return divergenceWindows(tr, func(s1, s2 []trace.WriteID) bool {
		_, _, ok := orderDiverged(s1, s2)
		return ok
	})
}

type timelineEvent struct {
	at    time.Time
	agent trace.AgentID
	read  *trace.Read
}

func divergenceWindows(tr *trace.TestTrace, diverged func(s1, s2 []trace.WriteID) bool) []WindowResult {
	reads := tr.ReadsByAgent()
	var out []WindowResult
	for _, p := range Pairs(tr) {
		// Merge the pair's reads into one corrected-time event stream.
		var events []timelineEvent
		for _, ag := range []trace.AgentID{p.A, p.B} {
			rs := reads[ag]
			for i := range rs {
				events = append(events, timelineEvent{
					at:    tr.Corrected(ag, rs[i].Returned),
					agent: ag,
					read:  &rs[i],
				})
			}
		}
		sortEvents(events)

		res := WindowResult{Pair: p, Converged: true}
		var (
			lastA, lastB  []trace.WriteID
			haveA, haveB  bool
			inWindow      bool
			windowStart   time.Time
			lastEventTime time.Time
		)
		closeWindow := func(end time.Time) {
			d := end.Sub(windowStart)
			if d < 0 {
				d = 0
			}
			res.Total += d
			res.Count++
			if d > res.Largest {
				res.Largest = d
			}
		}
		for _, ev := range events {
			if ev.agent == p.A {
				lastA, haveA = ev.read.Observed, true
			} else {
				lastB, haveB = ev.read.Observed, true
			}
			lastEventTime = ev.at
			cond := haveA && haveB && diverged(lastA, lastB)
			switch {
			case cond && !inWindow:
				inWindow = true
				windowStart = ev.at
			case !cond && inWindow:
				inWindow = false
				closeWindow(ev.at)
			}
		}
		if inWindow {
			// Still diverged at the end of the test.
			res.Converged = false
			closeWindow(lastEventTime)
		}
		out = append(out, res)
	}
	return out
}

func sortEvents(evs []timelineEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at.Before(evs[j].at) })
}
