package diskfault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"conprobe/internal/obs"
)

func openRW(t *testing.T, fs FS, path string) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	return f
}

func TestOSPassthrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, OS, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("readback: %q, %v", got, err)
	}
	if err := OS.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}

func TestTornWritePersistsStrictPrefix(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: KindTorn, Seed: 7}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, in.FS(), path)
	defer f.Close()
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if err == nil {
		t.Fatalf("torn write returned no error (wrote %d)", n)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes; want a strict prefix", n, len(payload))
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("file holds %q, want prefix %q", got, payload[:n])
	}
	// The fault is one-shot: the next write goes through clean.
	if _, err := f.Write([]byte("xy")); err != nil {
		t.Fatalf("write after one-shot torn fault: %v", err)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", in.Injected())
	}
}

// TestTornWriteHoldsFireOnOneByteWrites: a torn write persists a strict
// non-empty prefix, which a write shorter than 2 bytes does not have.
// An armed torn fault holds its fire on such writes — they pass through
// clean without consuming the fault — and tears the next write that can
// actually tear, so sweeps over small records test what KindTorn
// documents instead of degenerating to a 0-byte "tear".
func TestTornWriteHoldsFireOnOneByteWrites(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: KindTorn, Seed: 3}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, in.FS(), path)
	defer f.Close()
	if n, err := f.Write([]byte("a")); err != nil || n != 1 {
		t.Fatalf("1-byte write under an armed torn fault = (%d, %v), want a clean pass-through", n, err)
	}
	if in.Injected() != 0 {
		t.Fatalf("Injected() = %d after an untearable write, want 0 (fault still armed)", in.Injected())
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if err == nil {
		t.Fatalf("torn write returned no error (wrote %d)", n)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes; want a strict non-empty prefix", n, len(payload))
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", in.Injected())
	}
	got, _ := os.ReadFile(path)
	want := append([]byte("a"), payload[:n]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("file holds %q, want %q", got, want)
	}
}

func TestFsyncGateDropsUnsyncedBytes(t *testing.T) {
	in := New(nil)
	path := filepath.Join(t.TempDir(), "f")

	// Establish a synced prefix first.
	f := openRW(t, in.FS(), path)
	if _, err := f.Write([]byte("durable.")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("clean sync: %v", err)
	}
	// Arm the gate, write more, and watch the failed fsync eat it.
	if err := in.Arm(Fault{Kind: KindFsyncGate, Path: "f"}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if _, err := f.Write([]byte("doomed")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("gated fsync reported success")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "durable." {
		t.Fatalf("after gated fsync file holds %q, want %q (unsynced bytes must vanish)", got, "durable.")
	}
	// The canonical fsyncgate trap: a later Sync succeeds but the bytes
	// are still gone. Callers must poison on the FIRST failure.
	if err := f.Sync(); err != nil {
		t.Fatalf("post-gate sync: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "durable." {
		t.Fatalf("post-gate file holds %q, want %q", got, "durable.")
	}
	f.Close()
}

func TestBitFlipOnRead(t *testing.T) {
	in := New(nil)
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatalf("seed file: %v", err)
	}
	if err := in.Arm(Fault{Kind: KindBitFlip, Seed: 21}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	f := openRW(t, in.FS(), path)
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if bytes.Equal(got, []byte("payload")) {
		t.Fatal("bit flip did not fire")
	}
	diff := 0
	for i := range got {
		diff += popcount(got[i] ^ "payload"[i])
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1 (%q)", diff, got)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestENOSPCPersistsNothingAndSticks(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: KindENOSPC, Sticky: true}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, in.FS(), path)
	defer f.Close()
	for i := 0; i < 3; i++ {
		n, err := f.Write([]byte("data"))
		if n != 0 || !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d: (%d, %v), want (0, ENOSPC)", i, n, err)
		}
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("ENOSPC persisted %d bytes", st.Size())
	}
}

func TestDirSyncOmitIsSilent(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: KindDirSyncOmit}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := in.FS().SyncDir(t.TempDir()); err != nil {
		t.Fatalf("omitted dir sync must report success, got %v", err)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", in.Injected())
	}
}

func TestCrashBeforeRenameLeavesTmp(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: KindCrashRename}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	dir := t.TempDir()
	tmp, dst := filepath.Join(dir, "f.tmp"), filepath.Join(dir, "f")
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatalf("seed tmp: %v", err)
	}
	if err := in.FS().Rename(tmp, dst); err == nil {
		t.Fatal("rename succeeded through an armed crash-rename fault")
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("tmp file vanished: %v", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("destination appeared despite failed rename: %v", err)
	}
}

func TestAfterSkipsMatchingOps(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: KindENOSPC, After: 2}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	f := openRW(t, in.FS(), filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d should pass: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("third write: %v, want ENOSPC", err)
	}
}

func TestPathFilterAndDedup(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: KindENOSPC, Path: "term.log"}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	// Re-arming the identical fault is a no-op (chaos replays per lane).
	if err := in.Arm(Fault{Kind: KindENOSPC, Path: "term.log"}); err != nil {
		t.Fatalf("re-Arm: %v", err)
	}
	dir := t.TempDir()
	other := openRW(t, in.FS(), filepath.Join(dir, "oplog.log"))
	defer other.Close()
	if _, err := other.Write([]byte("fine")); err != nil {
		t.Fatalf("non-matching path hit the fault: %v", err)
	}
	term := openRW(t, in.FS(), filepath.Join(dir, "term.log"))
	defer term.Close()
	if _, err := term.Write([]byte("boom")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matching path missed the fault: %v", err)
	}
	// Dedup means exactly one armed fault, so a second matching write is
	// clean.
	if _, err := term.Write([]byte("fine")); err != nil {
		t.Fatalf("one-shot fault fired twice: %v", err)
	}
}

func TestArmRejectsUnknownKind(t *testing.T) {
	in := New(nil)
	if err := in.Arm(Fault{Kind: "melt"}); err == nil {
		t.Fatal("Arm accepted an unknown kind")
	}
}

func TestInjectedCounterObservable(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(reg.Scope("test"))
	if err := in.Arm(Fault{Kind: KindDirSyncOmit}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := in.FS().SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", in.Injected())
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		site    string
		kind    Kind
		after   int
		sticky  bool
		wantErr bool
	}{
		{spec: "term:fsync-gate", site: "term", kind: KindFsyncGate},
		{spec: "wal:torn:3", site: "wal", kind: KindTorn, after: 3},
		{spec: "checkpoint:enospc", site: "checkpoint", kind: KindENOSPC, sticky: true},
		{spec: "snapshot:crash-rename", site: "snapshot", kind: KindCrashRename},
		{spec: "store:bit-flip:1", site: "store", kind: KindBitFlip, after: 1},
		{spec: "bogus:torn", wantErr: true},
		{spec: "wal:melt", wantErr: true},
		{spec: "wal", wantErr: true},
		{spec: "wal:torn:-1", wantErr: true},
		{spec: "wal:torn:x", wantErr: true},
	}
	for _, tc := range cases {
		site, f, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %v", tc.spec, f)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if site != tc.site || f.Kind != tc.kind || f.After != tc.after || f.Sticky != tc.sticky {
			t.Errorf("ParseSpec(%q) = %s, %+v", tc.spec, site, f)
		}
		if f.Path != Sites[tc.site] {
			t.Errorf("ParseSpec(%q) path filter %q, want %q", tc.spec, f.Path, Sites[tc.site])
		}
	}
}
