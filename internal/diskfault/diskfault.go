// Package diskfault is a deterministic, seeded filesystem abstraction
// for storage-fault drills. The durable layers (internal/wal, the
// cluster term log, the durable store, internal/checkpoint) perform
// every file operation through the FS interface; production code uses
// the passthrough OS implementation, while tests and chaos drills wrap
// it in an Injector that arms precise, reproducible faults:
//
//   - torn writes: a write persists a prefix of its bytes, then errors —
//     the classic partial sector write of a crash or controller fault.
//   - fsync-gate: Sync returns an error AND the unsynced bytes silently
//     vanish from the file, modeling the post-2018 "fsyncgate" kernel
//     semantics where dirty pages are dropped after a failed writeback.
//     A later successful fsync proves nothing about the lost bytes, so
//     callers must poison the handle on the first failure.
//   - read bit flips: one deterministic bit of a read is inverted,
//     modeling media corruption below the checksum layer.
//   - ENOSPC: a write fails cleanly with no bytes persisted.
//   - dir-sync omission: SyncDir silently does nothing, modeling a
//     filesystem that accepts but ignores directory fsync.
//   - crash-before-rename: Rename fails, leaving the temp file behind,
//     modeling a crash between prepare and publish of an atomic replace.
//
// Faults are armed by (site substring, kind, after-N-matching-ops), so
// a seeded sweep can place the same fault at every interesting point of
// a deterministic operation sequence and the losing placement is
// reproducible from the seed alone.
package diskfault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"syscall"

	"conprobe/internal/obs"
)

// Kind names one injectable fault.
type Kind string

const (
	// KindTorn makes the next matching write persist only a strict
	// non-empty prefix of its bytes and return an error. Writes shorter
	// than 2 bytes cannot tear; the fault stays armed for the next
	// write that can.
	KindTorn Kind = "torn"
	// KindFsyncGate makes the next matching Sync fail and silently
	// drops every byte written since the last successful sync.
	KindFsyncGate Kind = "fsync-gate"
	// KindBitFlip inverts one deterministic bit of the next matching
	// read.
	KindBitFlip Kind = "bit-flip"
	// KindENOSPC fails the next matching write with ENOSPC, persisting
	// nothing.
	KindENOSPC Kind = "enospc"
	// KindDirSyncOmit silently skips the next matching directory sync.
	KindDirSyncOmit Kind = "dirsync-omit"
	// KindCrashRename fails the next matching rename, leaving the
	// source (temp) file in place.
	KindCrashRename Kind = "crash-rename"
)

// Kinds lists every fault kind, in a stable order for sweeps.
func Kinds() []Kind {
	return []Kind{KindTorn, KindFsyncGate, KindBitFlip, KindENOSPC, KindDirSyncOmit, KindCrashRename}
}

// Valid reports whether k names a known fault kind.
func (k Kind) Valid() bool {
	switch k {
	case KindTorn, KindFsyncGate, KindBitFlip, KindENOSPC, KindDirSyncOmit, KindCrashRename:
		return true
	}
	return false
}

// File is the handle surface the durable layers need. *os.File
// implements it; faulty implementations wrap one.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS abstracts the filesystem operations behind the WAL, snapshot,
// term-log, and checkpoint writers. Implementations wrap the real
// filesystem — paths stay real paths, so directory listings and
// external tooling keep working — and may inject faults.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs the directory itself, making a preceding rename or
	// create durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS used by production paths.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Fault arms one injection.
type Fault struct {
	// Kind selects the failure mode.
	Kind Kind
	// Path is a substring filter on the file (or directory) path; empty
	// matches every path. Sites arm faults by their characteristic file
	// name: "oplog.log", "term.log", ".snap", ".checkpoint".
	Path string
	// After skips the first After matching operations before firing, so
	// a sweep can place the fault at every point of a deterministic
	// operation sequence.
	After int
	// Sticky makes the fault fire on every matching operation once
	// reached, instead of exactly once. ENOSPC drills are sticky — a
	// full disk stays full.
	Sticky bool
	// Seed varies which bit a KindBitFlip inverts and how much of a
	// torn write survives; same seed, same damage.
	Seed uint64
}

func (f Fault) String() string {
	return fmt.Sprintf("%s(path~%q, after %d, sticky %t)", f.Kind, f.Path, f.After, f.Sticky)
}

type armedFault struct {
	Fault
	remaining int // matching ops to skip before firing
	spent     bool
}

// Injector wraps a base FS and fires armed faults deterministically.
// It is safe for concurrent use; the per-fault operation counters make
// injection deterministic whenever the caller's operation sequence is.
type Injector struct {
	base FS

	mu     sync.Mutex
	faults []*armedFault

	injected *obs.Counter
	byKind   map[Kind]*obs.Counter
}

// New builds an Injector over the real filesystem. sc may be nil;
// otherwise diskfault_injected_total counts every fired fault, with a
// per-kind labeled series beside it.
func New(sc *obs.Scope) *Injector {
	in := &Injector{
		base:     OS,
		injected: sc.Counter("diskfault_injected_total", "Storage faults injected by the diskfault layer."),
		byKind:   make(map[Kind]*obs.Counter),
	}
	for _, k := range Kinds() {
		in.byKind[k] = sc.With("fault", string(k)).Counter("diskfault_injected_by_kind_total",
			"Storage faults injected, by fault kind.")
	}
	return in
}

// Arm registers f. Arming an identical not-yet-spent fault again is a
// no-op, so replayed chaos schedules (one per simulation lane) arm each
// drill exactly once.
func (in *Injector) Arm(f Fault) error {
	if !f.Kind.Valid() {
		return fmt.Errorf("diskfault: unknown fault kind %q", f.Kind)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, a := range in.faults {
		if !a.spent && a.Fault == f {
			return nil
		}
	}
	in.faults = append(in.faults, &armedFault{Fault: f, remaining: f.After})
	return nil
}

// Injected returns the total number of faults fired so far.
func (in *Injector) Injected() uint64 { return in.injected.Value() }

// Armed returns how many faults have ever been armed (spent or not) —
// chaos replay tests use it to prove a resumed schedule does not
// double-arm.
func (in *Injector) Armed() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.faults)
}

// match consumes one operation of the given target kind on path and
// returns the fault to fire, if any. Only one fault fires per op.
func (in *Injector) match(kinds []Kind, path string) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, a := range in.faults {
		if a.spent || !containsKind(kinds, a.Kind) {
			continue
		}
		if a.Path != "" && !contains(path, a.Path) {
			continue
		}
		if a.remaining > 0 {
			a.remaining--
			continue
		}
		if !a.Sticky {
			a.spent = true
		}
		f := a.Fault
		in.fired(f.Kind)
		return &f
	}
	return nil
}

func (in *Injector) fired(k Kind) {
	in.injected.Inc()
	if c := in.byKind[k]; c != nil {
		c.Inc()
	}
}

func containsKind(ks []Kind, k Kind) bool {
	for _, c := range ks {
		if c == k {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	if sub == "" {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

var (
	writeFaults = []Kind{KindTorn, KindENOSPC}
	syncFaults  = []Kind{KindFsyncGate}
	readFaults  = []Kind{KindBitFlip}
)

// FS returns the fault-injecting filesystem view.
func (in *Injector) FS() FS { return faultFS{in: in} }

type faultFS struct {
	in *Injector
}

func (ffs faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := ffs.in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	// syncedSize is the byte size known durable: what the file held when
	// opened, rolled forward by successful Syncs. A gated fsync rolls
	// the real file back to it, which is exactly the data loss a dropped
	// dirty page causes.
	var synced int64
	if st, err := f.Stat(); err == nil {
		synced = st.Size()
	}
	return &faultFile{File: f, in: ffs.in, synced: synced}, nil
}

func (ffs faultFS) Rename(oldpath, newpath string) error {
	if f := ffs.in.match([]Kind{KindCrashRename}, oldpath+"\x00"+newpath); f != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath,
			Err: fmt.Errorf("diskfault: injected crash before rename")}
	}
	return ffs.in.base.Rename(oldpath, newpath)
}

func (ffs faultFS) Remove(name string) error              { return ffs.in.base.Remove(name) }
func (ffs faultFS) Stat(name string) (os.FileInfo, error) { return ffs.in.base.Stat(name) }

func (ffs faultFS) SyncDir(dir string) error {
	if f := ffs.in.match([]Kind{KindDirSyncOmit}, dir); f != nil {
		return nil // the omission is silent: caller believes the dir synced
	}
	return ffs.in.base.SyncDir(dir)
}

// faultFile wraps a real file handle and fires write/sync/read faults.
type faultFile struct {
	File
	in *Injector

	mu     sync.Mutex
	synced int64 // bytes known durable (see OpenFile)
}

func (f *faultFile) Write(p []byte) (int, error) {
	// A torn write persists a strict non-empty prefix, which needs at
	// least 2 bytes to exist. On smaller writes a torn fault holds its
	// fire — it stays armed for the next write that can actually tear —
	// rather than degenerating into a 0-byte "tear" that behaves like a
	// clean ENOSPC.
	kinds := writeFaults
	if len(p) < 2 {
		kinds = []Kind{KindENOSPC}
	}
	if fa := f.in.match(kinds, f.Name()); fa != nil {
		switch fa.Kind {
		case KindENOSPC:
			return 0, &fs.PathError{Op: "write", Path: f.Name(), Err: syscall.ENOSPC}
		case KindTorn:
			// Persist a strict prefix — at least 1 byte when the write has
			// any, never all of them — then fail like an interrupted write.
			n := 1 + int(fa.Seed%uint64(len(p)-1))
			wrote, err := f.File.Write(p[:n])
			if err != nil {
				return wrote, err
			}
			return wrote, &fs.PathError{Op: "write", Path: f.Name(),
				Err: fmt.Errorf("diskfault: injected torn write (%d of %d bytes)", wrote, len(p))}
		}
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fa := f.in.match(syncFaults, f.Name()); fa != nil {
		// fsync-gate: report failure AND drop the unsynced bytes, like a
		// kernel discarding dirty pages after a failed writeback. A later
		// Sync on this handle will "succeed" while the data stays lost —
		// which is why callers must poison the handle on first failure.
		if err := f.File.Truncate(f.synced); err == nil {
			_, _ = f.File.Seek(0, io.SeekEnd)
		}
		return &fs.PathError{Op: "sync", Path: f.Name(),
			Err: fmt.Errorf("diskfault: injected fsync failure (unsynced bytes dropped)")}
	}
	if err := f.File.Sync(); err != nil {
		return err
	}
	if st, err := f.File.Stat(); err == nil {
		f.synced = st.Size()
	}
	return nil
}

func (f *faultFile) Truncate(size int64) error {
	err := f.File.Truncate(size)
	if err == nil {
		f.mu.Lock()
		if f.synced > size {
			f.synced = size
		}
		f.mu.Unlock()
	}
	return err
}

func (f *faultFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	if n > 0 {
		if fa := f.in.match(readFaults, f.Name()); fa != nil {
			i := int(fa.Seed % uint64(n))
			p[i] ^= 1 << (fa.Seed % 8)
		}
	}
	return n, err
}
