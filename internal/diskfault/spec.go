package diskfault

import (
	"fmt"
	"strconv"
	"strings"
)

// Sites maps drill-site names — the storage surfaces a consvc node
// persists through — to the path substring that identifies that site's
// files. The chaos layer and the consvc -disk-fault flag both speak
// these names.
var Sites = map[string]string{
	"wal":        "oplog.log",  // the cluster op WAL
	"term":       "term.log",   // the election term log
	"snapshot":   ".snap",      // state snapshots (node.snap, state.snap)
	"store":      "wal-",       // durable store shard WALs
	"checkpoint": "checkpoint", // campaign checkpoint journals
}

// SiteNames lists the known sites in a stable order.
func SiteNames() []string {
	return []string{"wal", "term", "snapshot", "store", "checkpoint"}
}

// ParseSpec parses a drill spec of the form "site:kind[:afterN]" —
// e.g. "term:fsync-gate" or "wal:torn:3" — into the site name and the
// fault to arm, with the site's path filter filled in.
func ParseSpec(spec string) (site string, f Fault, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return "", Fault{}, fmt.Errorf("diskfault: spec %q: want site:kind[:afterN]", spec)
	}
	site = parts[0]
	pathSub, ok := Sites[site]
	if !ok {
		return "", Fault{}, fmt.Errorf("diskfault: spec %q: unknown site %q (known: %s)",
			spec, site, strings.Join(SiteNames(), ", "))
	}
	f = Fault{Kind: Kind(parts[1]), Path: pathSub}
	if !f.Kind.Valid() {
		return "", Fault{}, fmt.Errorf("diskfault: spec %q: unknown fault kind %q", spec, parts[1])
	}
	if len(parts) == 3 {
		after, aerr := strconv.Atoi(parts[2])
		if aerr != nil || after < 0 {
			return "", Fault{}, fmt.Errorf("diskfault: spec %q: after must be a non-negative integer", spec)
		}
		f.After = after
	}
	// A full disk stays full; everything else fires once.
	f.Sticky = f.Kind == KindENOSPC
	return site, f, nil
}
