// Package session implements client-side session-guarantee enforcement,
// the mitigation the paper sketches in its discussion (Section V): "most
// of the session guarantees can be easily enforced at the application
// level by simply identifying requests with a session id and a sequence
// number within a session, and using a combination of caching and
// replaying previous values that were read and written, and delaying or
// omitting the delivery of messages."
//
// Client wraps a service.Service for one agent and masks anomalies in
// the read path:
//
//   - Read Your Writes: acknowledged own writes missing from a read are
//     replayed from the session's write cache.
//
//   - Monotonic Reads: writes observed by an earlier read that have
//     disappeared are replayed from the session's read cache.
//
//   - Monotonic Writes: the session's own writes are re-ordered into
//     issue order wherever they appear.
//
//   - Writes Follows Reads: as the paper notes, this one "is a bit more
//     complicated to enforce" — a reader cannot know the causal triggers
//     of other clients' writes from the black-box API alone. It becomes
//     enforceable when writers cooperate: a writing session declares its
//     causal dependency in Post.DependsOn, and reading sessions delay
//     the delivery of a post until its declared cause is visible —
//     exactly the paper's "delaying or omitting the delivery of
//     messages".
package session

import (
	"sort"
	"sync"

	"conprobe/internal/service"
	"conprobe/internal/simnet"
)

// Guarantees is a bit set of session guarantees to enforce.
type Guarantees uint8

// The maskable guarantees.
const (
	ReadYourWrites Guarantees = 1 << iota
	MonotonicReads
	MonotonicWrites
	// WritesFollowsReads requires cooperating writers that declare
	// causal dependencies in Post.DependsOn.
	WritesFollowsReads

	// All enables every maskable guarantee.
	All = ReadYourWrites | MonotonicReads | MonotonicWrites | WritesFollowsReads
)

// Has reports whether g includes want.
func (g Guarantees) Has(want Guarantees) bool { return g&want == want }

// Client is a per-agent session layer over a Service.
type Client struct {
	svc      service.Service
	label    string
	g        Guarantees
	maxCache int

	mu        sync.Mutex
	ownWrites []service.Post          // acknowledged writes, issue order
	ownSeq    map[string]int          // write ID -> issue index
	seen      map[string]service.Post // observed posts (bounded)
	seenOrder []string                // first-observation order
}

var _ service.Service = (*Client)(nil)

// Option configures a Client.
type Option func(*Client)

// WithCacheLimit bounds the read cache to n posts, evicting the oldest
// observations first. Long-lived sessions (continuous monitoring) need a
// bound; evicted posts can no longer be replayed for monotonic reads.
// Zero (the default) keeps everything, which is right for the paper's
// bounded per-test sessions.
func WithCacheLimit(n int) Option {
	return func(c *Client) { c.maxCache = n }
}

// Wrap builds a session Client enforcing g for the agent with the given
// author label.
func Wrap(svc service.Service, label string, g Guarantees, opts ...Option) *Client {
	c := &Client{
		svc:    svc,
		label:  label,
		g:      g,
		ownSeq: make(map[string]int),
		seen:   make(map[string]service.Post),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name returns the wrapped service's name.
func (c *Client) Name() string { return c.svc.Name() }

// Write forwards to the service and caches the acknowledged write.
func (c *Client) Write(from simnet.Site, p service.Post) error {
	if err := c.svc.Write(from, p); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ownSeq[p.ID] = len(c.ownWrites)
	c.ownWrites = append(c.ownWrites, p)
	return nil
}

// Read forwards to the service and masks the enabled anomalies in the
// returned sequence.
func (c *Client) Read(from simnet.Site, reader string) ([]service.Post, error) {
	posts, err := c.svc.Read(from, reader)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Writes Follows Reads: delay delivery of posts whose declared
	// causal dependency is not yet visible to this session.
	if c.g.Has(WritesFollowsReads) {
		posts = c.delayUncausedLocked(posts)
	}

	present := make(map[string]bool, len(posts))
	for _, p := range posts {
		present[p.ID] = true
	}

	// Monotonic Reads: replay previously observed posts that vanished.
	if c.g.Has(MonotonicReads) {
		for _, id := range c.seenOrder {
			if !present[id] {
				posts = append(posts, c.seen[id])
				present[id] = true
			}
		}
	}

	// Read Your Writes: replay acknowledged own writes that are missing.
	if c.g.Has(ReadYourWrites) {
		for _, w := range c.ownWrites {
			if !present[w.ID] {
				posts = append(posts, w)
				present[w.ID] = true
			}
		}
	}

	// Monotonic Writes: within the positions occupied by this session's
	// writes, restore issue order.
	if c.g.Has(MonotonicWrites) {
		c.reorderOwnLocked(posts)
	}

	// Update the read cache, evicting oldest observations past the cap.
	for _, p := range posts {
		if _, ok := c.seen[p.ID]; !ok {
			c.seen[p.ID] = p
			c.seenOrder = append(c.seenOrder, p.ID)
		}
	}
	if c.maxCache > 0 {
		for len(c.seenOrder) > c.maxCache {
			delete(c.seen, c.seenOrder[0])
			c.seenOrder = c.seenOrder[1:]
		}
	}
	return posts, nil
}

// delayUncausedLocked removes posts whose DependsOn names a post that is
// neither in the result, nor previously observed, nor written by this
// session — iterating to a fixpoint so dependency chains are delayed
// together. Caller holds mu.
func (c *Client) delayUncausedLocked(posts []service.Post) []service.Post {
	for {
		visible := make(map[string]bool, len(posts))
		for _, p := range posts {
			visible[p.ID] = true
		}
		kept := posts[:0]
		removed := false
		for _, p := range posts {
			dep := p.DependsOn
			ok := dep == "" || visible[dep]
			if !ok {
				if _, seen := c.seen[dep]; seen {
					ok = true
				}
			}
			if !ok {
				if _, own := c.ownSeq[dep]; own {
					ok = true
				}
			}
			if ok {
				kept = append(kept, p)
			} else {
				removed = true
			}
		}
		posts = kept
		if !removed {
			return posts
		}
	}
}

// reorderOwnLocked sorts this session's own writes into issue order,
// keeping them at the slots they occupied. Caller holds mu.
func (c *Client) reorderOwnLocked(posts []service.Post) {
	var slots []int
	for i, p := range posts {
		if _, ok := c.ownSeq[p.ID]; ok {
			slots = append(slots, i)
		}
	}
	if len(slots) < 2 {
		return
	}
	own := make([]service.Post, len(slots))
	for i, s := range slots {
		own[i] = posts[s]
	}
	sort.SliceStable(own, func(i, j int) bool {
		return c.ownSeq[own[i].ID] < c.ownSeq[own[j].ID]
	})
	for i, s := range slots {
		posts[s] = own[i]
	}
}

// BeginTest forwards the test boundary to the wrapped service so its
// deterministic per-test state (fault draws, backoff jitter, read
// nonces) rebases onto the test ID. The session caches themselves are
// cleared by Reset, which the campaign runner calls right after.
func (c *Client) BeginTest(id int) {
	if ts, ok := c.svc.(service.TestScoped); ok {
		ts.BeginTest(id)
	}
}

// Reset clears the session caches and resets the underlying service.
// The local caches are cleared even when the underlying reset fails, so
// a retried reset starts from a clean session.
func (c *Client) Reset() error {
	err := c.svc.Reset()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ownWrites = nil
	c.ownSeq = make(map[string]int)
	c.seen = make(map[string]service.Post)
	c.seenOrder = nil
	return err
}
