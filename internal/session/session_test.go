package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"conprobe/internal/core"
	"conprobe/internal/probe"
	"conprobe/internal/service"
	"conprobe/internal/simnet"
	"conprobe/internal/trace"
)

// fakeService is a scripted Service for unit-testing the masking logic.
type fakeService struct {
	mu       sync.Mutex
	reads    [][]service.Post
	next     int
	writeErr error
	readErr  error
	resets   int
	writes   []service.Post
}

func (f *fakeService) Name() string { return "fake" }

func (f *fakeService) Write(_ simnet.Site, p service.Post) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writeErr != nil {
		return f.writeErr
	}
	f.writes = append(f.writes, p)
	return nil
}

func (f *fakeService) Read(_ simnet.Site, _ string) ([]service.Post, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.readErr != nil {
		return nil, f.readErr
	}
	if f.next >= len(f.reads) {
		return nil, nil
	}
	out := f.reads[f.next]
	f.next++
	return append([]service.Post(nil), out...), nil
}

func (f *fakeService) Reset() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resets++
	f.next = 0
	return nil
}

func post(id string) service.Post { return service.Post{ID: id, Author: "agent1"} }

func idsOf(ps []service.Post) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRYWMaskingReplaysOwnWrites(t *testing.T) {
	f := &fakeService{reads: [][]service.Post{{post("other")}}}
	c := Wrap(f, "agent1", ReadYourWrites)
	if err := c.Write(simnet.Oregon, post("mine")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(idsOf(got), []string{"other", "mine"}) {
		t.Fatalf("read = %v, want own write replayed", idsOf(got))
	}
}

func TestRYWNotMaskedWithoutGuarantee(t *testing.T) {
	f := &fakeService{reads: [][]service.Post{{}}}
	c := Wrap(f, "agent1", MonotonicReads)
	if err := c.Write(simnet.Oregon, post("mine")); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Read(simnet.Oregon, "agent1")
	if len(got) != 0 {
		t.Fatalf("read = %v, want unmasked", idsOf(got))
	}
}

func TestMRMaskingReplaysSeenWrites(t *testing.T) {
	f := &fakeService{reads: [][]service.Post{
		{post("m1"), post("m2")},
		{post("m2")}, // m1 vanished
	}}
	c := Wrap(f, "agent1", MonotonicReads)
	if _, err := c.Read(simnet.Oregon, "agent1"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(idsOf(got), []string{"m2", "m1"}) {
		t.Fatalf("read = %v, want m1 replayed", idsOf(got))
	}
}

func TestMWMaskingReordersOwnWrites(t *testing.T) {
	f := &fakeService{reads: [][]service.Post{
		{post("m2"), post("x"), post("m1")}, // own pair reversed
	}}
	c := Wrap(f, "agent1", MonotonicWrites)
	if err := c.Write(simnet.Oregon, post("m1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(simnet.Oregon, post("m2")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	// Own writes restored to issue order in their original slots.
	if !eq(idsOf(got), []string{"m1", "x", "m2"}) {
		t.Fatalf("read = %v, want own pair reordered in place", idsOf(got))
	}
}

func TestMWMaskingLeavesForeignWritesAlone(t *testing.T) {
	f := &fakeService{reads: [][]service.Post{
		{post("b"), post("a")},
	}}
	c := Wrap(f, "agent1", All)
	got, err := c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(idsOf(got), []string{"b", "a"}) {
		t.Fatalf("read = %v, foreign order must be preserved", idsOf(got))
	}
}

func TestWriteErrorNotCached(t *testing.T) {
	f := &fakeService{writeErr: errors.New("boom"), reads: [][]service.Post{{}}}
	c := Wrap(f, "agent1", All)
	if err := c.Write(simnet.Oregon, post("m1")); err == nil {
		t.Fatal("write error swallowed")
	}
	got, _ := c.Read(simnet.Oregon, "agent1")
	if len(got) != 0 {
		t.Fatalf("failed write replayed: %v", idsOf(got))
	}
}

func TestReadErrorPropagates(t *testing.T) {
	f := &fakeService{readErr: errors.New("boom")}
	c := Wrap(f, "agent1", All)
	if _, err := c.Read(simnet.Oregon, "agent1"); err == nil {
		t.Fatal("read error swallowed")
	}
}

func TestResetClearsSessionAndService(t *testing.T) {
	f := &fakeService{reads: [][]service.Post{{post("m1")}, {}}}
	c := Wrap(f, "agent1", All)
	if err := c.Write(simnet.Oregon, post("w1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(simnet.Oregon, "agent1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if f.resets != 1 {
		t.Fatalf("service resets = %d, want 1", f.resets)
	}
	got, _ := c.Read(simnet.Oregon, "agent1")
	// After reset nothing is replayed: the (rewound) scripted read
	// returns m1 only.
	if !eq(idsOf(got), []string{"m1"}) {
		t.Fatalf("read after reset = %v", idsOf(got))
	}
}

func TestNameDelegates(t *testing.T) {
	c := Wrap(&fakeService{}, "agent1", All)
	if c.Name() != "fake" {
		t.Fatal("Name not delegated")
	}
}

func TestGuaranteesHas(t *testing.T) {
	if !All.Has(ReadYourWrites) || !All.Has(MonotonicReads|MonotonicWrites) {
		t.Fatal("All must include everything")
	}
	if ReadYourWrites.Has(MonotonicReads) {
		t.Fatal("RYW should not include MR")
	}
}

// TestMaskingEndToEnd runs the ablation the paper's discussion motivates:
// wrapping every agent in the session layer eliminates the maskable
// session-guarantee anomalies on the anomaly-heavy FBFeed profile.
func TestMaskingEndToEnd(t *testing.T) {
	const seeds = 3
	for seed := int64(0); seed < seeds; seed++ {
		wrap := func(ag probe.Agent, svc service.Service) service.Service {
			return Wrap(svc, ag.Label(), All)
		}
		res, err := probe.Simulate(probe.SimulateOptions{
			Service:    service.NameFBFeed,
			Test1Count: 2,
			Seed:       900 + seed,
			Wrap:       wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range res.TracesOf(trace.Test1) {
			if vs := core.CheckReadYourWrites(tr); len(vs) != 0 {
				t.Fatalf("seed %d: RYW not masked: %d violations", seed, len(vs))
			}
			if vs := core.CheckMonotonicReads(tr); len(vs) != 0 {
				t.Fatalf("seed %d: MR not masked: %d violations", seed, len(vs))
			}
			// Monotonic writes: the reader can only fix pairs it wrote
			// itself; require that each agent's own reads never violate
			// MW for its own writes.
			for _, v := range core.CheckMonotonicWrites(tr) {
				w, ok := tr.WriteByID(v.Write)
				if ok && w.Agent == v.Agent {
					t.Fatalf("seed %d: own-write MW not masked: %+v", seed, v)
				}
			}
		}
	}
}

// TestMaskingReducesAnomalies compares masked and unmasked campaigns.
func TestMaskingReducesAnomalies(t *testing.T) {
	count := func(wrapped bool) int {
		var w probe.ClientWrapper
		if wrapped {
			w = func(ag probe.Agent, svc service.Service) service.Service {
				return Wrap(svc, ag.Label(), All)
			}
		}
		res, err := probe.Simulate(probe.SimulateOptions{
			Service:    service.NameFBFeed,
			Test1Count: 4,
			Seed:       42,
			Wrap:       w,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, tr := range res.Traces {
			total += len(core.CheckReadYourWrites(tr)) +
				len(core.CheckMonotonicReads(tr))
		}
		return total
	}
	raw, masked := count(false), count(true)
	if raw == 0 {
		t.Fatal("baseline shows no anomalies; test is vacuous")
	}
	if masked != 0 {
		t.Fatalf("masked campaign still has %d RYW+MR violations (baseline %d)", masked, raw)
	}
}

func TestWFRMaskingDelaysEffectWithoutCause(t *testing.T) {
	reply := post("reply")
	reply.DependsOn = "question"
	f := &fakeService{reads: [][]service.Post{
		{reply},                   // effect visible without its cause
		{post("question"), reply}, // cause arrives
	}}
	c := Wrap(f, "agent1", WritesFollowsReads)
	got, err := c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("uncaused reply delivered: %v", idsOf(got))
	}
	got, err = c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(idsOf(got), []string{"question", "reply"}) {
		t.Fatalf("read = %v, want cause then effect", idsOf(got))
	}
}

func TestWFRMaskingAcceptsSeenOrOwnCause(t *testing.T) {
	reply := post("reply")
	reply.DependsOn = "question"
	f := &fakeService{reads: [][]service.Post{
		{post("question")}, // observe the cause first
		{reply},            // cause vanished but was seen: deliver
	}}
	c := Wrap(f, "agent1", WritesFollowsReads)
	if _, err := c.Read(simnet.Oregon, "agent1"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(idsOf(got), []string{"reply"}) {
		t.Fatalf("read = %v, want reply delivered", idsOf(got))
	}

	// Own writes satisfy dependencies too.
	dep := post("mine-reply")
	dep.DependsOn = "mine"
	f2 := &fakeService{reads: [][]service.Post{{dep}}}
	c2 := Wrap(f2, "agent1", WritesFollowsReads)
	if err := c2.Write(simnet.Oregon, post("mine")); err != nil {
		t.Fatal(err)
	}
	got, err = c2.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(idsOf(got), []string{"mine-reply"}) {
		t.Fatalf("read = %v, want own-caused reply", idsOf(got))
	}
}

func TestWFRMaskingDelaysChains(t *testing.T) {
	b := post("b")
	b.DependsOn = "a"
	cpost := post("c")
	cpost.DependsOn = "b"
	f := &fakeService{reads: [][]service.Post{{cpost, b}}} // a missing
	cl := Wrap(f, "agent1", WritesFollowsReads)
	got, err := cl.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("chain not fully delayed: %v", idsOf(got))
	}
}

func TestWFRMaskingEndToEnd(t *testing.T) {
	wrap := func(ag probe.Agent, svc service.Service) service.Service {
		return Wrap(svc, ag.Label(), All)
	}
	for seed := int64(0); seed < 3; seed++ {
		res, err := probe.Simulate(probe.SimulateOptions{
			Service:    service.NameFBFeed,
			Test1Count: 3,
			Seed:       700 + seed,
			Wrap:       wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range res.Traces {
			if vs := core.CheckWritesFollowsReads(tr); len(vs) != 0 {
				t.Fatalf("seed %d: WFR not masked: %+v", seed, vs[0])
			}
		}
	}
}

func TestClientConcurrentUse(t *testing.T) {
	// The session client guards shared caches; concurrent reads and
	// writes must be race-free (run under -race).
	f := &fakeService{reads: make([][]service.Post, 200)}
	for i := range f.reads {
		f.reads[i] = []service.Post{post("m1"), post("m2")}
	}
	c := Wrap(f, "agent1", All)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					_, _ = c.Read(simnet.Oregon, "agent1")
				} else {
					_ = c.Write(simnet.Oregon, post(fmt.Sprintf("w%d-%d", g, i)))
				}
			}
		}()
	}
	wg.Wait()
}

func TestCacheLimitEvictsOldest(t *testing.T) {
	f := &fakeService{reads: [][]service.Post{
		{post("m1")}, {post("m2")}, {post("m3")},
		{}, // everything vanished
	}}
	c := Wrap(f, "agent1", MonotonicReads, WithCacheLimit(2))
	for i := 0; i < 3; i++ {
		if _, err := c.Read(simnet.Oregon, "agent1"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Read(simnet.Oregon, "agent1")
	if err != nil {
		t.Fatal(err)
	}
	// Only the two newest observations can be replayed; m1 was evicted.
	if !eq(idsOf(got), []string{"m2", "m3"}) {
		t.Fatalf("read = %v, want replay of newest two", idsOf(got))
	}
}
