// Package ratelimit implements a token-bucket limiter driven by a
// vtime.Clock. It models the per-service API rate limits that constrained
// the paper's measurement campaigns (read periods, inter-test gaps), and
// is also used by the HTTP facade to reject over-rate clients.
package ratelimit

import (
	"sync"
	"time"

	"conprobe/internal/vtime"
)

// Limiter is a token bucket: capacity burst, refilled at rate tokens per
// second. It is safe for concurrent use.
type Limiter struct {
	mu     sync.Mutex
	clock  vtime.Clock
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// New returns a full Limiter refilling at rate tokens/second with the
// given burst capacity. rate and burst must be positive.
func New(clock vtime.Clock, rate, burst float64) *Limiter {
	if rate <= 0 {
		rate = 1
	}
	if burst <= 0 {
		burst = 1
	}
	return &Limiter{
		clock:  clock,
		rate:   rate,
		burst:  burst,
		tokens: burst,
		last:   clock.Now(),
	}
}

// refillLocked advances the bucket to now. Caller holds mu.
func (l *Limiter) refillLocked(now time.Time) {
	elapsed := now.Sub(l.last)
	if elapsed <= 0 {
		return
	}
	l.last = now
	l.tokens += elapsed.Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}

// Allow reports whether one token is available now, consuming it if so.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(l.clock.Now())
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// Reserve consumes one token, going into debt if necessary, and returns
// how long the caller must wait before acting on it.
func (l *Limiter) Reserve() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(l.clock.Now())
	l.tokens--
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.rate * float64(time.Second))
}

// Wait blocks (on the limiter's clock) until a token is available, then
// consumes it.
func (l *Limiter) Wait() {
	if d := l.Reserve(); d > 0 {
		l.clock.Sleep(d)
	}
}

// Tokens returns the number of whole tokens currently available; negative
// when the bucket is in debt from Reserve.
func (l *Limiter) Tokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(l.clock.Now())
	return l.tokens
}
