package ratelimit

import (
	"testing"
	"time"

	"conprobe/internal/vtime"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAllowConsumesBurst(t *testing.T) {
	s := vtime.NewSim(epoch)
	s.Go(func() {
		l := New(s, 1, 3)
		for i := 0; i < 3; i++ {
			if !l.Allow() {
				t.Errorf("Allow #%d = false, want true", i)
			}
		}
		if l.Allow() {
			t.Error("Allow after burst exhausted = true, want false")
		}
	})
	s.Wait()
}

func TestRefillOverTime(t *testing.T) {
	s := vtime.NewSim(epoch)
	s.Go(func() {
		l := New(s, 2, 1) // 2 tokens/s, burst 1
		if !l.Allow() {
			t.Fatal("first Allow failed")
		}
		if l.Allow() {
			t.Fatal("second immediate Allow succeeded")
		}
		s.Sleep(500 * time.Millisecond) // refills exactly one token
		if !l.Allow() {
			t.Fatal("Allow after refill failed")
		}
	})
	s.Wait()
}

func TestTokensCappedAtBurst(t *testing.T) {
	s := vtime.NewSim(epoch)
	s.Go(func() {
		l := New(s, 100, 5)
		s.Sleep(time.Hour)
		if got := l.Tokens(); got != 5 {
			t.Errorf("Tokens = %v, want capped at 5", got)
		}
	})
	s.Wait()
}

func TestReserveDebtAndWait(t *testing.T) {
	s := vtime.NewSim(epoch)
	s.Go(func() {
		l := New(s, 10, 1) // 10/s
		if d := l.Reserve(); d != 0 {
			t.Fatalf("first Reserve wait = %v, want 0", d)
		}
		d := l.Reserve()
		if d != 100*time.Millisecond {
			t.Fatalf("second Reserve wait = %v, want 100ms", d)
		}
		t0 := s.Now()
		l.Wait() // third token: 200ms after start of debt
		if got := s.Since(t0); got != 200*time.Millisecond {
			t.Fatalf("Wait blocked %v, want 200ms", got)
		}
	})
	s.Wait()
}

func TestWaitPacesToRate(t *testing.T) {
	s := vtime.NewSim(epoch)
	s.Go(func() {
		l := New(s, 5, 1) // 5 ops/s
		t0 := s.Now()
		for i := 0; i < 11; i++ {
			l.Wait()
		}
		elapsed := s.Since(t0)
		// 1 burst token + 10 refills at 200ms = 2s.
		if elapsed != 2*time.Second {
			t.Fatalf("11 waits took %v, want 2s", elapsed)
		}
	})
	s.Wait()
}

func TestInvalidParamsClamped(t *testing.T) {
	s := vtime.NewSim(epoch)
	l := New(s, -1, 0)
	if !l.Allow() {
		t.Fatal("clamped limiter should allow one op")
	}
}
