// Package resilience hardens the live-probing path: a retry policy with
// exponential backoff and deterministic jitter, per-operation deadlines
// bounding the total retry budget, and a per-endpoint circuit breaker —
// packaged as a service.Service middleware applied around transport
// clients such as httpapi.Client.
//
// Write idempotency: every write in this codebase carries a
// client-supplied post ID, and the httpapi server deduplicates by that
// ID, so retrying a write whose acknowledgment was lost cannot
// double-insert a post. Duplicated writes would corrupt the
// monotonic-writes and order-divergence checkers, which key on unique
// write IDs; the dedup contract is what makes retries safe for
// measurement.
//
// Backoff jitter is keyed deterministic randomness (detrand) over
// (seed, operation key, attempt), so a fault-injected campaign under the
// virtual-time simulator replays bit-identically for a fixed seed.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"conprobe/internal/detrand"
	"conprobe/internal/obs"
	"conprobe/internal/service"
	"conprobe/internal/simnet"
	"conprobe/internal/vtime"
)

// ErrOpen marks operations rejected because the circuit breaker was
// open; callers account these as skipped, not failed.
var ErrOpen = errors.New("resilience: circuit open")

// RetryPolicy declares how failed operations are retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 5s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// JitterFrac adds a deterministic jitter in [0, JitterFrac) of the
	// delay (default 0.2; negative disables).
	JitterFrac float64
	// Seed keys the jitter draws.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	return p
}

// Backoff returns the delay before attempt+1, after the attempt-th try
// of the operation identified by key failed (attempt is 1-based). The
// schedule is exponential from BaseDelay, capped at MaxDelay, with a
// deterministic jitter keyed by (Seed, key, attempt).
func (p RetryPolicy) Backoff(key string, attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	delay := time.Duration(d)
	if delay > p.MaxDelay {
		delay = p.MaxDelay
	}
	if p.JitterFrac > 0 {
		k := detrand.NewKey(p.Seed, "backoff").Str(key).Uint(uint64(attempt))
		delay += time.Duration(k.Float64() * p.JitterFrac * float64(delay))
	}
	return delay
}

// Stats counts what the middleware did.
type Stats struct {
	// Ops is the number of operations requested of the middleware.
	Ops int
	// Retries is the number of extra attempts spent beyond first tries.
	Retries int
	// Recovered counts operations that failed at least once but
	// ultimately succeeded within the retry budget.
	Recovered int
	// Failures counts operations that exhausted their budget and
	// returned an error.
	Failures int
	// Skipped counts operations rejected locally because the breaker
	// was open; they never reached the wire.
	Skipped int
	// BreakerTrips is how many times the breaker opened.
	BreakerTrips int
}

// Service wraps an inner Service with retries, deadlines and an
// optional circuit breaker. Wrap one Service per endpoint (per agent in
// a campaign) so breaker state is per-endpoint health.
type Service struct {
	inner    service.Service
	clock    vtime.Clock
	policy   RetryPolicy
	breaker  *Breaker
	deadline time.Duration

	mu       sync.Mutex
	ctx      context.Context // bound campaign context; nil means Background
	round    uint64          // current test ID (0 outside campaigns)
	readSeq  map[string]uint64
	resetSeq uint64
	stats    Stats

	// msc is the telemetry scope set by WithMetrics; the handles below
	// are resolved from it at the end of Wrap (so option order never
	// matters) and are always non-nil — a nil scope yields live
	// unregistered metrics.
	msc      *obs.Scope
	mOps     *obs.Counter
	mRetries *obs.Counter
	mRecov   *obs.Counter
	mFail    *obs.Counter
	mSkipped *obs.Counter
	mHonored *obs.Counter
	mBackoff *obs.Histogram
}

var _ service.Service = (*Service)(nil)

// Option configures the middleware.
type Option func(*Service)

// WithBreaker adds a circuit breaker with the given config.
func WithBreaker(cfg BreakerConfig) Option {
	return func(s *Service) { s.breaker = NewBreaker(s.clock, cfg) }
}

// WithDeadline bounds each operation's total time across attempts: once
// the elapsed time plus the next backoff would exceed d, the operation
// stops retrying and returns its last error.
func WithDeadline(d time.Duration) Option {
	return func(s *Service) { s.deadline = d }
}

// WithMetrics registers the middleware's telemetry under sc: operation,
// retry, recovery, failure and skip counters, a backoff-sleep histogram,
// and — when a breaker is also configured, in either option order —
// breaker transition counters labeled by target state. A nil scope is
// allowed and records nothing.
func WithMetrics(sc *obs.Scope) Option {
	return func(s *Service) { s.msc = sc }
}

// Wrap builds the middleware around inner.
func Wrap(inner service.Service, clock vtime.Clock, policy RetryPolicy, opts ...Option) *Service {
	s := &Service{
		inner:   inner,
		clock:   clock,
		policy:  policy.withDefaults(),
		readSeq: make(map[string]uint64),
	}
	for _, o := range opts {
		o(s)
	}
	s.mOps = s.msc.Counter("ops_total", "Operations requested of the resilience middleware.")
	s.mRetries = s.msc.Counter("retries_total", "Extra attempts spent beyond first tries.")
	s.mRecov = s.msc.Counter("recovered_total", "Operations that failed at least once but succeeded within budget.")
	s.mFail = s.msc.Counter("failures_total", "Operations that exhausted their retry budget.")
	s.mSkipped = s.msc.Counter("skipped_total", "Operations rejected locally because the breaker was open.")
	s.mHonored = s.msc.Counter("retry_after_honored_total", "Backoffs stretched to honor a server Retry-After hint.")
	s.mBackoff = s.msc.Histogram("backoff_seconds", "Backoff slept between retry attempts.", nil)
	if s.breaker != nil && s.msc != nil {
		// One counter per target state, resolved now so the transition
		// hook (which runs under the breaker's lock) only does an atomic
		// increment.
		trans := [...]*obs.Counter{
			Closed:   s.msc.With("to", "closed").Counter("breaker_transitions_total", "Breaker state transitions by target state."),
			Open:     s.msc.With("to", "open").Counter("breaker_transitions_total", "Breaker state transitions by target state."),
			HalfOpen: s.msc.With("to", "half-open").Counter("breaker_transitions_total", "Breaker state transitions by target state."),
		}
		s.breaker.OnTransition(func(_, to State) {
			if int(to) < len(trans) {
				trans[to].Inc()
			}
		})
	}
	return s
}

// Name returns the wrapped service's name.
func (s *Service) Name() string { return s.inner.Name() }

// Breaker returns the breaker, or nil when none is configured.
func (s *Service) Breaker() *Breaker { return s.breaker }

// Healthy reports whether an operation attempted now would be admitted
// (false while the breaker is open and its timeout has not elapsed).
// Runners use it to skip-and-account instead of queueing doomed calls.
func (s *Service) Healthy() bool {
	return s.breaker == nil || s.breaker.Ready()
}

// BindContext binds ctx to every subsequent operation issued through the
// Service interface (Write/Read/Reset): a cancelled context aborts the
// retry loop at the next attempt boundary instead of burning the full
// budget. The binding is forwarded to the wrapped service when it also
// implements a BindContext method (an HTTP client cancels in-flight
// requests). Campaign runners call this once per campaign.
func (s *Service) BindContext(ctx context.Context) {
	s.mu.Lock()
	s.ctx = ctx
	s.mu.Unlock()
	if b, ok := s.inner.(interface{ BindContext(context.Context) }); ok {
		b.BindContext(ctx)
	}
}

// boundCtx returns the bound campaign context, or Background.
func (s *Service) boundCtx() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// Stats returns a snapshot of the middleware counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	if s.breaker != nil {
		st.BreakerTrips = s.breaker.Trips()
	}
	return st
}

func (s *Service) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Do runs op under the retry policy, deadline and breaker. key names the
// operation for deterministic backoff jitter. A cancelled ctx stops the
// operation at the next attempt boundary: before the first attempt it
// returns ctx's error without touching the wire, and between attempts it
// abandons the remaining retry budget. A nil ctx means Background. The
// Service interface methods (Write/Read/Reset) route through Do with the
// context bound by BindContext.
func (s *Service) Do(ctx context.Context, key string, op func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("resilience: %s: %w", key, err)
	}
	if s.breaker != nil && !s.breaker.Allow() {
		s.count(func(st *Stats) { st.Skipped++ })
		s.mSkipped.Inc()
		return fmt.Errorf("%w: %s", ErrOpen, key)
	}
	s.count(func(st *Stats) { st.Ops++ })
	s.mOps.Inc()
	start := s.clock.Now()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			if s.breaker != nil {
				s.breaker.OnSuccess()
			}
			if attempt > 1 {
				s.count(func(st *Stats) { st.Recovered++ })
				s.mRecov.Inc()
			}
			return nil
		}
		if s.breaker != nil {
			s.breaker.OnFailure()
		}
		if attempt >= s.policy.MaxAttempts {
			break
		}
		if s.breaker != nil && !s.breaker.Ready() {
			// The breaker tripped under us; stop burning the budget.
			break
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Cancelled between attempts: surface the cancellation (with
			// the operation's last error for context) instead of retrying.
			s.count(func(st *Stats) { st.Failures++ })
			s.mFail.Inc()
			return fmt.Errorf("resilience: %s after %d attempt(s) (last error: %v): %w",
				key, attempt, err, ctxErr)
		}
		backoff := s.policy.Backoff(key, attempt)
		// A load-shedding server's Retry-After hint (httpapi 429/503)
		// extends the backoff when it asks for more patience than the
		// local schedule would grant; retrying sooner would only be shed
		// again.
		var hinted interface {
			error
			RetryAfterHint() (time.Duration, bool)
		}
		if errors.As(err, &hinted) {
			if hint, ok := hinted.RetryAfterHint(); ok && hint > backoff {
				backoff = hint
				s.mHonored.Inc()
			}
		}
		// Strictly greater: WithDeadline promises to stop only when the
		// next backoff *would exceed* the budget, so landing exactly on
		// the deadline still buys one more attempt.
		if s.deadline > 0 && s.clock.Since(start)+backoff > s.deadline {
			break
		}
		s.count(func(st *Stats) { st.Retries++ })
		s.mRetries.Inc()
		s.mBackoff.Observe(backoff.Seconds())
		s.clock.Sleep(backoff)
	}
	s.count(func(st *Stats) { st.Failures++ })
	s.mFail.Inc()
	return err
}

// do routes an operation through Do with the bound campaign context.
func (s *Service) do(key string, op func() error) error {
	return s.Do(s.boundCtx(), key, op)
}

// BeginTest scopes the middleware's deterministic state to test id:
// read and reset sequence numbers restart, so backoff-jitter keys are a
// function of (seed, test ID, that test's operations). Forwards to the
// wrapped service. Idempotent per id. Note that breaker state is NOT
// test-scoped — endpoint health legitimately spans tests — so resumable
// campaigns journal it via Export and rewind it via Restore.
func (s *Service) BeginTest(id int) {
	s.mu.Lock()
	if s.round != uint64(id) {
		s.round = uint64(id)
		s.readSeq = make(map[string]uint64)
		s.resetSeq = 0
	}
	s.mu.Unlock()
	if ts, ok := s.inner.(service.TestScoped); ok {
		ts.BeginTest(id)
	}
}

// Write publishes p, retrying on failure. The post keeps its
// client-supplied ID across attempts, so a dedup-aware server treats a
// retried write as an idempotent replay.
func (s *Service) Write(from simnet.Site, p service.Post) error {
	return s.do("w:"+p.ID, func() error { return s.inner.Write(from, p) })
}

// Read lists posts, retrying on failure.
func (s *Service) Read(from simnet.Site, reader string) ([]service.Post, error) {
	s.mu.Lock()
	s.readSeq[reader]++
	seq := s.round<<20 | s.readSeq[reader]
	s.mu.Unlock()
	var posts []service.Post
	err := s.do(fmt.Sprintf("r:%s:%d", reader, seq), func() error {
		var err error
		posts, err = s.inner.Read(from, reader)
		return err
	})
	if err != nil {
		return nil, err
	}
	return posts, nil
}

// Reset resets the inner service, retrying on failure (a silently
// failed reset would leak the previous test's posts into the next
// trace).
func (s *Service) Reset() error {
	s.mu.Lock()
	s.resetSeq++
	seq := s.round<<20 | s.resetSeq
	s.mu.Unlock()
	return s.do(fmt.Sprintf("reset:%d", seq), func() error { return s.inner.Reset() })
}
