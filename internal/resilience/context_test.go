package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"conprobe/internal/service"
	"conprobe/internal/simnet"
)

func TestDoCancelledBeforeFirstAttempt(t *testing.T) {
	inner := newScriptService(0)
	s := Wrap(inner, newFakeClock(), RetryPolicy{MaxAttempts: 3, JitterFrac: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Do(ctx, "w:p1", func() error { t.Fatal("op ran despite cancelled ctx"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Ops != 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want no ops counted for a pre-cancelled operation", st)
	}
}

func TestDoCancelledBetweenAttempts(t *testing.T) {
	inner := newScriptService(10) // every attempt fails
	s := Wrap(inner, newFakeClock(), RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, JitterFrac: -1})
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := s.Do(ctx, "w:p1", func() error {
		attempts++
		cancel() // cancel during the first attempt; the loop must notice
		return errScripted
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (remaining retry budget abandoned)", attempts)
	}
	st := s.Stats()
	if st.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", st.Failures)
	}
}

func TestBindContextStopsServiceOps(t *testing.T) {
	inner := newScriptService(0)
	s := Wrap(inner, newFakeClock(), RetryPolicy{MaxAttempts: 3, JitterFrac: -1})
	ctx, cancel := context.WithCancel(context.Background())
	s.BindContext(ctx)
	if err := s.Write(simnet.Oregon, service.Post{ID: "p1"}); err != nil {
		t.Fatalf("write before cancel failed: %v", err)
	}
	cancel()
	if err := s.Write(simnet.Oregon, service.Post{ID: "p2"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("write after cancel: err = %v, want context.Canceled", err)
	}
	if _, err := s.Read(simnet.Oregon, "r"); !errors.Is(err, context.Canceled) {
		t.Fatalf("read after cancel: err = %v, want context.Canceled", err)
	}
	if err := s.Reset(); !errors.Is(err, context.Canceled) {
		t.Fatalf("reset after cancel: err = %v, want context.Canceled", err)
	}
}

// bindRecorder verifies the binding is forwarded to a wrapped service
// that also implements BindContext (e.g. an HTTP client).
type bindRecorder struct {
	*scriptService
	bound context.Context
}

func (b *bindRecorder) BindContext(ctx context.Context) { b.bound = ctx }

func TestBindContextForwardsToInner(t *testing.T) {
	inner := &bindRecorder{scriptService: newScriptService(0)}
	s := Wrap(inner, newFakeClock(), RetryPolicy{})
	type ctxKey struct{}
	ctx := context.WithValue(context.Background(), ctxKey{}, "campaign")
	s.BindContext(ctx)
	if inner.bound != ctx {
		t.Fatal("BindContext was not forwarded to the inner service")
	}
}
