package resilience

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"conprobe/internal/service"
	"conprobe/internal/simnet"
)

// flakySvc fails the first n operations, then succeeds.
type flakySvc struct {
	remaining int
}

func (f *flakySvc) Name() string { return "flaky" }

func (f *flakySvc) Write(simnet.Site, service.Post) error {
	if f.remaining > 0 {
		f.remaining--
		return errors.New("flaky: injected failure")
	}
	return nil
}

func (f *flakySvc) Read(simnet.Site, string) ([]service.Post, error) {
	if f.remaining > 0 {
		f.remaining--
		return nil, errors.New("flaky: injected failure")
	}
	return nil, nil
}

func (f *flakySvc) Reset() error { return nil }

// TestBreakerExportRestoreRoundtrip journals an open breaker through a
// JSON round trip and checks the restored twin behaves identically:
// still rejecting until OpenUntil, then admitting a half-open probe.
func TestBreakerExportRestoreRoundtrip(t *testing.T) {
	clock := newFakeClock()
	cfg := BreakerConfig{FailureThreshold: 2, OpenFor: 10 * time.Second}
	b := NewBreaker(clock, cfg)
	b.OnFailure()
	b.OnFailure() // trips
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}

	snap := b.Export()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BreakerSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	restored := NewBreaker(clock, cfg)
	if err := restored.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if restored.State() != Open || restored.Trips() != 1 {
		t.Fatalf("restored state = %v trips = %d, want open/1", restored.State(), restored.Trips())
	}
	if restored.Allow() {
		t.Fatal("restored open breaker admitted before OpenUntil")
	}
	clock.Sleep(11 * time.Second)
	if !restored.Allow() {
		t.Fatal("restored breaker did not admit a half-open probe after OpenUntil")
	}
	restored.OnSuccess()
	if restored.State() != Closed {
		t.Fatalf("after probe success state = %v, want closed", restored.State())
	}
}

// TestServiceExportRestore checks the middleware's stats and breaker
// position survive the journal round trip, including the
// consecutive-failure streak of a still-closed breaker.
func TestServiceExportRestore(t *testing.T) {
	clock := newFakeClock()
	cfg := BreakerConfig{FailureThreshold: 5, OpenFor: 10 * time.Second}
	policy := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterFrac: -1}
	s := Wrap(&flakySvc{remaining: 100}, clock, policy, WithBreaker(cfg))

	// One failed op burns 2 attempts: streak 2 of 5 toward the trip.
	if err := s.Write(simnet.Oregon, service.Post{ID: "m1"}); err == nil {
		t.Fatal("first write should exhaust its budget")
	}

	snap := s.Export()
	if snap.Stats.Ops != 1 || snap.Stats.Failures != 1 || snap.Stats.Retries != 1 {
		t.Fatalf("exported stats = %+v", snap.Stats)
	}
	if snap.Breaker == nil || snap.Breaker.State != "closed" || snap.Breaker.ConsecFail != 2 {
		t.Fatalf("exported breaker = %+v, want closed with streak 2", snap.Breaker)
	}

	restored := Wrap(&flakySvc{remaining: 100}, clock, policy, WithBreaker(cfg))
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := restored.Stats(); got.Ops != 1 || got.Failures != 1 {
		t.Fatalf("restored stats = %+v", got)
	}
	// The streak continues where the exported one stopped: two more ops
	// add 3 failures (the breaker trips mid-second-op at 5), so the
	// restored middleware opens where a fresh one (streak 4) would not.
	_ = restored.Write(simnet.Oregon, service.Post{ID: "m2"})
	_ = restored.Write(simnet.Oregon, service.Post{ID: "m3"})
	if restored.Breaker().State() != Open {
		t.Fatalf("restored breaker state = %v, want open after streak continuation", restored.Breaker().State())
	}
	fresh := Wrap(&flakySvc{remaining: 100}, clock, policy, WithBreaker(cfg))
	_ = fresh.Write(simnet.Oregon, service.Post{ID: "m2"})
	_ = fresh.Write(simnet.Oregon, service.Post{ID: "m3"})
	if fresh.Breaker().State() != Closed {
		t.Fatalf("fresh breaker state = %v; the restore comparison is vacuous", fresh.Breaker().State())
	}
}

func TestSnapshotValidate(t *testing.T) {
	if err := (Snapshot{}).Validate(false); err != nil {
		t.Errorf("breakerless snapshot rejected: %v", err)
	}
	withBreaker := Snapshot{Breaker: &BreakerSnapshot{State: "open"}}
	if err := withBreaker.Validate(false); err == nil || !strings.Contains(err.Error(), "no breaker") {
		t.Errorf("breaker snapshot into breakerless middleware: %v", err)
	}
	if err := withBreaker.Validate(true); err != nil {
		t.Errorf("valid breaker snapshot rejected: %v", err)
	}
	bad := Snapshot{Breaker: &BreakerSnapshot{State: "smoldering"}}
	if err := bad.Validate(true); err == nil || !strings.Contains(err.Error(), "smoldering") {
		t.Errorf("unknown state accepted: %v", err)
	}
}
