package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenAdmissionBounded races a crowd of callers against
// the Open→HalfOpen transition: no matter how many arrive at once, at
// most HalfOpenSuccesses probes may be in flight before one reports
// back.
func TestBreakerHalfOpenAdmissionBounded(t *testing.T) {
	const limit = 3
	clock := newFakeClock()
	b := NewBreaker(clock, BreakerConfig{
		FailureThreshold:  1,
		OpenFor:           10 * time.Second,
		HalfOpenSuccesses: limit,
	})
	b.OnFailure() // trip
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}
	clock.Sleep(11 * time.Second)

	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != limit {
		t.Fatalf("half-open admitted %d concurrent probes, want %d", got, limit)
	}

	// The admitted probes succeed; the breaker closes and traffic flows.
	for i := 0; i < limit; i++ {
		b.OnSuccess()
	}
	if b.State() != Closed {
		t.Fatalf("state after %d half-open successes = %v, want closed", limit, b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected traffic")
	}
}

// TestBreakerHalfOpenStress cycles trip → elapse → probe under heavy
// concurrency, checking on every cycle that the in-flight probe bound
// holds and the breaker still converges to a sane state. Run with
// -race: this is also the regression test for the unsynchronized
// half-open stampede.
func TestBreakerHalfOpenStress(t *testing.T) {
	const (
		cycles  = 50
		workers = 16
		limit   = 2
	)
	clock := newFakeClock()
	b := NewBreaker(clock, BreakerConfig{
		FailureThreshold:  1,
		OpenFor:           time.Second,
		HalfOpenSuccesses: limit,
	})

	for cycle := 0; cycle < cycles; cycle++ {
		b.OnFailure()
		if b.State() != Open {
			t.Fatalf("cycle %d: breaker did not trip", cycle)
		}
		clock.Sleep(2 * time.Second)

		// Workers race Allow and immediately report an outcome; the
		// outcome alternates per cycle so both the re-trip and the close
		// paths run under contention.
		succeed := cycle%2 == 0
		var inflight, maxInflight atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					if !b.Allow() {
						continue
					}
					cur := inflight.Add(1)
					for {
						prev := maxInflight.Load()
						if cur <= prev || maxInflight.CompareAndSwap(prev, cur) {
							break
						}
					}
					if succeed {
						b.OnSuccess()
					} else {
						b.OnFailure()
					}
					inflight.Add(-1)
				}
			}()
		}
		wg.Wait()
		// Closed-state traffic is unbounded by design, so the bound is
		// only asserted on failing cycles, where the breaker can never
		// leave HalfOpen for Closed.
		if !succeed && maxInflight.Load() > limit {
			t.Fatalf("cycle %d: %d probes in flight through a half-open breaker, want <= %d",
				cycle, maxInflight.Load(), limit)
		}
		if st := b.State(); succeed {
			if st != Closed {
				t.Fatalf("cycle %d: state = %v after successful probes, want closed", cycle, st)
			}
		} else if st != Open {
			t.Fatalf("cycle %d: state = %v after failing probes, want open", cycle, st)
		}
		if succeed {
			continue
		}
		// A failing cycle leaves the breaker open; let it elapse and
		// close it so the next cycle starts from Closed.
		clock.Sleep(2 * time.Second)
		if !b.Allow() {
			t.Fatalf("cycle %d: elapsed breaker rejected the probe", cycle)
		}
		for i := 0; i < limit; i++ {
			b.OnSuccess()
		}
		if b.State() != Closed {
			t.Fatalf("cycle %d: recovery did not close the breaker", cycle)
		}
	}
}
