package resilience

import (
	"sync"
	"time"

	"conprobe/internal/vtime"
)

// State is a circuit breaker's position.
type State int

// Breaker states: Closed passes traffic, Open rejects it, HalfOpen lets
// probe traffic through to decide whether to close again.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// (default 5).
	FailureThreshold int
	// OpenFor is how long the breaker rejects traffic before admitting a
	// half-open probe (default 30s).
	OpenFor time.Duration
	// HalfOpenSuccesses is how many consecutive half-open successes
	// close the breaker again (default 1).
	HalfOpenSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 30 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	return c
}

// Breaker is a per-endpoint circuit breaker: consecutive failures trip
// it open, open rejects operations outright (so a dead agent endpoint
// stops burning the campaign's time on doomed requests), and after
// OpenFor it admits probes half-open until enough succeed to close.
type Breaker struct {
	clock vtime.Clock
	cfg   BreakerConfig

	mu         sync.Mutex
	state      State
	consecFail int
	openUntil  time.Time
	halfSucc   int
	// halfInflight counts admitted half-open probes that have not yet
	// reported an outcome. Bounding it to HalfOpenSuccesses stops a
	// concurrent stampede through a half-open breaker: without it every
	// caller racing past the Open→HalfOpen transition was admitted, and
	// a still-sick endpoint absorbed an unbounded probe burst.
	halfInflight int
	trips        int
	// onTransition, when set, observes every state change. It is called
	// with mu held, so implementations must not call back into the
	// breaker; metric increments (atomic, non-blocking) are the intended
	// use.
	onTransition func(from, to State)
}

// NewBreaker builds a breaker over the given clock.
func NewBreaker(clock vtime.Clock, cfg BreakerConfig) *Breaker {
	return &Breaker{clock: clock, cfg: cfg.withDefaults()}
}

// OnTransition registers f to observe every state change (telemetry).
// f runs with the breaker's lock held and must not call back into the
// breaker.
func (b *Breaker) OnTransition(f func(from, to State)) {
	b.mu.Lock()
	b.onTransition = f
	b.mu.Unlock()
}

// setState moves the breaker to s and notifies the transition observer.
// Caller holds mu.
func (b *Breaker) setState(s State) {
	if s == b.state {
		return
	}
	from := b.state
	b.state = s
	if b.onTransition != nil {
		b.onTransition(from, s)
	}
}

// Allow reports whether an operation may proceed now. An Open breaker
// whose timeout has elapsed transitions to HalfOpen and admits the
// call. HalfOpen admits at most HalfOpenSuccesses probes at a time;
// further callers are rejected until an admitted probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.clock.Now().Before(b.openUntil) {
			return false
		}
		b.setState(HalfOpen)
		b.halfSucc = 0
		b.halfInflight = 1
		return true
	case HalfOpen:
		if b.halfInflight >= b.cfg.HalfOpenSuccesses {
			return false
		}
		b.halfInflight++
		return true
	default:
		return true
	}
}

// OnSuccess records a successful operation.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if b.halfInflight > 0 {
			b.halfInflight--
		}
		b.halfSucc++
		if b.halfSucc >= b.cfg.HalfOpenSuccesses {
			b.setState(Closed)
			b.consecFail = 0
			b.halfInflight = 0
		}
	case Closed:
		b.consecFail = 0
	}
}

// OnFailure records a failed operation, tripping the breaker when the
// threshold is reached (or immediately when half-open).
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.tripLocked()
	case Closed:
		b.consecFail++
		if b.consecFail >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	}
}

// tripLocked opens the breaker. Caller holds mu.
func (b *Breaker) tripLocked() {
	b.setState(Open)
	b.openUntil = b.clock.Now().Add(b.cfg.OpenFor)
	b.consecFail = 0
	b.halfInflight = 0
	b.trips++
}

// State returns the current state without side effects (an elapsed Open
// breaker still reports Open until Allow admits the first probe).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Ready reports whether an operation attempted now would be admitted,
// without transitioning state — the passive twin of Allow, for health
// checks.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != Open || !b.clock.Now().Before(b.openUntil)
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
