package resilience

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"conprobe/internal/service"
	"conprobe/internal/simnet"
)

// scriptService fails each operation until its per-key failure budget is
// spent, recording every attempt.
type scriptService struct {
	mu        sync.Mutex
	failFirst int            // fail this many attempts of every operation
	attempts  map[string]int // per-operation-key attempt counts
	writes    []service.Post
}

var errScripted = errors.New("scripted failure")

func newScriptService(failFirst int) *scriptService {
	return &scriptService{failFirst: failFirst, attempts: make(map[string]int)}
}

func (s *scriptService) try(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts[key]++
	if s.attempts[key] <= s.failFirst {
		return errScripted
	}
	return nil
}

func (s *scriptService) Name() string { return "script" }

func (s *scriptService) Write(from simnet.Site, p service.Post) error {
	if err := s.try("w:" + p.ID); err != nil {
		return err
	}
	s.mu.Lock()
	s.writes = append(s.writes, p)
	s.mu.Unlock()
	return nil
}

func (s *scriptService) Read(from simnet.Site, reader string) ([]service.Post, error) {
	if err := s.try("r:" + reader); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]service.Post, len(s.writes))
	copy(out, s.writes)
	return out, nil
}

func (s *scriptService) Reset() error { return s.try("reset") }

func TestBackoffScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{
		BaseDelay:  100 * time.Millisecond,
		MaxDelay:   2 * time.Second,
		Multiplier: 2,
		JitterFrac: -1, // disabled: exact schedule
	}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for i, w := range want {
		if got := p.Backoff("op", i+1); got != w {
			t.Fatalf("Backoff(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, JitterFrac: 0.2, Seed: 4}
	for attempt := 1; attempt <= 5; attempt++ {
		a := p.Backoff("w:p1", attempt)
		b := p.Backoff("w:p1", attempt)
		if a != b {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		base := p.withDefaults().BaseDelay
		for i := 1; i < attempt; i++ {
			base *= 2
		}
		if base > p.withDefaults().MaxDelay {
			base = p.withDefaults().MaxDelay
		}
		if a < base || a >= base+time.Duration(0.2*float64(base)) {
			t.Fatalf("attempt %d backoff %v outside [%v, %v)", attempt, a, base, base+base/5)
		}
	}
	// Different keys draw different jitter (with overwhelming likelihood
	// for a fixed seed this is a deterministic fact, not a flake).
	if p.Backoff("w:p1", 1) == p.Backoff("w:p2", 1) && p.Backoff("w:p1", 2) == p.Backoff("w:p2", 2) {
		t.Fatal("jitter identical across distinct operation keys")
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	inner := newScriptService(2) // fail twice, then succeed
	clock := newFakeClock()
	s := Wrap(inner, clock, RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, JitterFrac: -1, Seed: 1})
	before := clock.Now()
	if err := s.Write(simnet.Oregon, service.Post{ID: "p1"}); err != nil {
		t.Fatalf("write failed despite budget: %v", err)
	}
	// Two backoffs: 50ms + 100ms.
	if got := clock.Now().Sub(before); got != 150*time.Millisecond {
		t.Fatalf("slept %v across retries, want 150ms", got)
	}
	st := s.Stats()
	if st.Ops != 1 || st.Retries != 2 || st.Recovered != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 1 op, 2 retries, 1 recovered", st)
	}
	if len(inner.writes) != 1 {
		t.Fatalf("inner saw %d writes, want 1", len(inner.writes))
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	inner := newScriptService(10)
	s := Wrap(inner, newFakeClock(), RetryPolicy{MaxAttempts: 3, JitterFrac: -1})
	err := s.Write(simnet.Oregon, service.Post{ID: "p1"})
	if !errors.Is(err, errScripted) {
		t.Fatalf("err = %v, want the inner error", err)
	}
	st := s.Stats()
	if st.Failures != 1 || st.Retries != 2 || st.Recovered != 0 {
		t.Fatalf("stats = %+v, want 1 failure after 2 retries", st)
	}
}

func TestDeadlineBoundsRetryBudget(t *testing.T) {
	inner := newScriptService(10)
	clock := newFakeClock()
	// First backoff 100ms fits a 150ms deadline; the second (200ms) would
	// exceed it, so the op stops after two attempts.
	s := Wrap(inner, clock, RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, JitterFrac: -1},
		WithDeadline(150*time.Millisecond))
	if err := s.Write(simnet.Oregon, service.Post{ID: "p1"}); err == nil {
		t.Fatal("write succeeded unexpectedly")
	}
	if got := inner.attempts["w:p1"]; got != 2 {
		t.Fatalf("deadline allowed %d attempts, want 2", got)
	}
}

// TestDeadlineExactBoundaryStillRetries pins the off-by-one fixed in
// the deadline check: with zero jitter, backoffs of 100ms then 200ms
// land exactly on a 300ms deadline after the second retry. "Would
// exceed" semantics mean equality is still inside the budget, so the
// operation gets a third attempt; the 400ms backoff after it is the
// first to actually exceed the deadline.
func TestDeadlineExactBoundaryStillRetries(t *testing.T) {
	inner := newScriptService(10)
	clock := newFakeClock()
	s := Wrap(inner, clock, RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, JitterFrac: -1},
		WithDeadline(300*time.Millisecond))
	before := clock.Now()
	if err := s.Write(simnet.Oregon, service.Post{ID: "p1"}); err == nil {
		t.Fatal("write succeeded unexpectedly")
	}
	if got := inner.attempts["w:p1"]; got != 3 {
		t.Fatalf("deadline allowed %d attempts, want 3 (equality is within budget)", got)
	}
	if got := clock.Now().Sub(before); got != 300*time.Millisecond {
		t.Fatalf("slept %v across retries, want exactly the 300ms deadline", got)
	}
}

func TestBreakerSkipsWhileOpen(t *testing.T) {
	inner := newScriptService(1000)
	clock := newFakeClock()
	s := Wrap(inner, clock,
		RetryPolicy{MaxAttempts: 1, JitterFrac: -1},
		WithBreaker(BreakerConfig{FailureThreshold: 2, OpenFor: 30 * time.Second}))

	for i := 0; i < 2; i++ {
		if _, err := s.Read(simnet.Oregon, "r"); err == nil {
			t.Fatal("read succeeded unexpectedly")
		}
	}
	if s.Healthy() {
		t.Fatal("Healthy() true with breaker open")
	}
	if _, err := s.Read(simnet.Oregon, "r"); !errors.Is(err, ErrOpen) {
		t.Fatalf("read while open = %v, want ErrOpen", err)
	}
	st := s.Stats()
	if st.Skipped != 1 || st.BreakerTrips != 1 {
		t.Fatalf("stats = %+v, want 1 skipped, 1 trip", st)
	}
	// The skipped call never reached the inner service.
	if got := inner.attempts["r:r"]; got != 2 {
		t.Fatalf("inner saw %d read attempts, want 2", got)
	}

	clock.Sleep(30 * time.Second)
	if !s.Healthy() {
		t.Fatal("Healthy() false after OpenFor elapsed")
	}
}

func TestBreakerTripMidRetryStopsBudget(t *testing.T) {
	inner := newScriptService(1000)
	s := Wrap(inner, newFakeClock(),
		RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, JitterFrac: -1},
		WithBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Minute}))
	if err := s.Write(simnet.Oregon, service.Post{ID: "p1"}); err == nil {
		t.Fatal("write succeeded unexpectedly")
	}
	// The breaker trips on the third consecutive failure; the remaining
	// seven attempts of the budget must not be spent.
	if got := inner.attempts["w:p1"]; got != 3 {
		t.Fatalf("inner saw %d attempts, want 3 (stop at breaker trip)", got)
	}
}

func TestRetriedWriteKeepsPostID(t *testing.T) {
	// The idempotency contract: every attempt of a retried write carries
	// the same client-supplied post ID, so a dedup-aware server treats
	// replays as no-ops.
	var ids []string
	inner := &idRecorder{fail: 2, ids: &ids}
	s := Wrap(inner, newFakeClock(), RetryPolicy{MaxAttempts: 3, JitterFrac: -1})
	if err := s.Write(simnet.Oregon, service.Post{ID: "stable-id"}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("inner saw %d attempts, want 3", len(ids))
	}
	for _, id := range ids {
		if id != "stable-id" {
			t.Fatalf("attempt carried ID %q, want stable-id", id)
		}
	}
}

// idRecorder records the post ID of every write attempt, failing the
// first fail attempts.
type idRecorder struct {
	mu   sync.Mutex
	fail int
	ids  *[]string
}

func (r *idRecorder) Name() string { return "ids" }

func (r *idRecorder) Write(from simnet.Site, p service.Post) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	*r.ids = append(*r.ids, p.ID)
	if len(*r.ids) <= r.fail {
		return errScripted
	}
	return nil
}

func (r *idRecorder) Read(from simnet.Site, reader string) ([]service.Post, error) {
	return nil, nil
}

func (r *idRecorder) Reset() error { return nil }

func TestResetRetries(t *testing.T) {
	inner := newScriptService(1)
	s := Wrap(inner, newFakeClock(), RetryPolicy{MaxAttempts: 2, JitterFrac: -1})
	if err := s.Reset(); err != nil {
		t.Fatalf("reset failed despite retry budget: %v", err)
	}
	if got := inner.attempts["reset"]; got != 2 {
		t.Fatalf("inner saw %d reset attempts, want 2", got)
	}
}

func TestStatsAcrossManyOps(t *testing.T) {
	inner := newScriptService(0)
	s := Wrap(inner, newFakeClock(), RetryPolicy{MaxAttempts: 3, JitterFrac: -1})
	for i := 0; i < 10; i++ {
		if err := s.Write(simnet.Oregon, service.Post{ID: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Ops != 10 || st.Retries != 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 10 clean ops", st)
	}
	if !s.Healthy() {
		t.Fatal("breakerless service not Healthy")
	}
}
