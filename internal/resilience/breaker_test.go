package resilience

import (
	"sync"
	"testing"
	"time"

	"conprobe/internal/vtime"
)

// fakeClock is a single-goroutine vtime.Clock whose Sleep advances time
// instantly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) AfterFunc(d time.Duration, f func()) vtime.Timer { panic("unused") }

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 3, OpenFor: 10 * time.Second})
	for i := 0; i < 2; i++ {
		b.OnFailure()
		if got := b.State(); got != Closed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	b.OnFailure()
	if got := b.State(); got != Open {
		t.Fatalf("after threshold state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an operation before OpenFor elapsed")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(newFakeClock(), BreakerConfig{FailureThreshold: 3})
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if got := b.State(); got != Closed {
		t.Fatalf("non-consecutive failures tripped the breaker (state %v)", got)
	}
}

func TestBreakerHalfOpenThenCloses(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(clock, BreakerConfig{
		FailureThreshold:  1,
		OpenFor:           10 * time.Second,
		HalfOpenSuccesses: 2,
	})
	b.OnFailure()
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}
	clock.Sleep(10 * time.Second)
	if !b.Allow() {
		t.Fatal("elapsed breaker rejected the half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after elapsed Allow = %v, want half-open", b.State())
	}
	b.OnSuccess()
	if b.State() != HalfOpen {
		t.Fatal("breaker closed before HalfOpenSuccesses successes")
	}
	b.OnSuccess()
	if b.State() != Closed {
		t.Fatalf("state after enough half-open successes = %v, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReTrips(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 1, OpenFor: 5 * time.Second})
	b.OnFailure()
	clock.Sleep(5 * time.Second)
	if !b.Allow() {
		t.Fatal("elapsed breaker rejected the half-open probe")
	}
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("half-open failure left state %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-tripped breaker allowed an operation immediately")
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerReadyIsPassive(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(clock, BreakerConfig{FailureThreshold: 1, OpenFor: 5 * time.Second})
	if !b.Ready() {
		t.Fatal("closed breaker not Ready")
	}
	b.OnFailure()
	if b.Ready() {
		t.Fatal("open breaker Ready before OpenFor elapsed")
	}
	clock.Sleep(5 * time.Second)
	if !b.Ready() {
		t.Fatal("elapsed breaker not Ready")
	}
	// Ready must not transition state; only Allow admits the probe.
	if b.State() != Open {
		t.Fatalf("Ready transitioned state to %v", b.State())
	}
}
