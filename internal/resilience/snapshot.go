package resilience

import (
	"fmt"
	"time"
)

// BreakerSnapshot is a breaker's journaled state. It captures the
// fields that outlive a single operation; half-open probe bookkeeping
// is transient (no probe is in flight at a checkpoint boundary) and is
// not recorded.
type BreakerSnapshot struct {
	// State is the breaker position ("closed", "open", "half-open").
	State string `json:"state"`
	// ConsecFail is the consecutive-failure count toward the trip
	// threshold (meaningful while closed).
	ConsecFail int `json:"consec_fail,omitempty"`
	// OpenUntil is when an open breaker starts admitting probes again
	// (virtual time in simulated campaigns).
	OpenUntil time.Time `json:"open_until,omitempty"`
	// HalfSucc is the consecutive half-open successes toward closing.
	HalfSucc int `json:"half_succ,omitempty"`
	// Trips is the cumulative trip count.
	Trips int `json:"trips,omitempty"`
}

// Snapshot is a resilience middleware's journaled state: the
// cumulative counters plus the breaker position, captured at a quiet
// boundary (between tests, no operation in flight).
type Snapshot struct {
	Stats   Stats            `json:"stats"`
	Breaker *BreakerSnapshot `json:"breaker,omitempty"`
}

// Validate checks the snapshot can be restored into a middleware whose
// breaker presence matches hasBreaker.
func (s Snapshot) Validate(hasBreaker bool) error {
	if s.Breaker == nil {
		return nil
	}
	if !hasBreaker {
		return fmt.Errorf("resilience: snapshot carries breaker state but no breaker is configured")
	}
	switch s.Breaker.State {
	case Closed.String(), Open.String(), HalfOpen.String():
		return nil
	}
	return fmt.Errorf("resilience: unknown breaker state %q", s.Breaker.State)
}

// Export captures the breaker's journalable state.
func (b *Breaker) Export() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:      b.state.String(),
		ConsecFail: b.consecFail,
		OpenUntil:  b.openUntil,
		HalfSucc:   b.halfSucc,
		Trips:      b.trips,
	}
}

// Restore rewinds the breaker to a journaled state. Half-open probe
// admission restarts from zero inflight: the snapshot was taken at a
// boundary with no probe outstanding.
func (b *Breaker) Restore(snap BreakerSnapshot) error {
	var st State
	switch snap.State {
	case Closed.String():
		st = Closed
	case Open.String():
		st = Open
	case HalfOpen.String():
		st = HalfOpen
	default:
		return fmt.Errorf("resilience: unknown breaker state %q", snap.State)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(st)
	b.consecFail = snap.ConsecFail
	b.openUntil = snap.OpenUntil
	b.halfSucc = snap.HalfSucc
	b.halfInflight = 0
	b.trips = snap.Trips
	return nil
}

// Export captures the middleware's journalable state: stats and, when
// a breaker is configured, its position. Call at a quiet boundary (the
// checkpoint path calls it between tests).
func (s *Service) Export() Snapshot {
	s.mu.Lock()
	snap := Snapshot{Stats: s.stats}
	s.mu.Unlock()
	if s.breaker != nil {
		bs := s.breaker.Export()
		snap.Breaker = &bs
		snap.Stats.BreakerTrips = bs.Trips
	}
	return snap
}

// Restore rewinds the middleware to a journaled state, so a resumed
// campaign's breaker opens, closes and counts exactly as the
// uninterrupted run's would have.
func (s *Service) Restore(snap Snapshot) error {
	if snap.Breaker != nil {
		if s.breaker == nil {
			return fmt.Errorf("resilience: snapshot carries breaker state but no breaker is configured")
		}
		if err := s.breaker.Restore(*snap.Breaker); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.stats = snap.Stats
	s.mu.Unlock()
	return nil
}
