package service

import (
	"hash/fnv"
	"math/rand"
	"time"

	"conprobe/internal/store"
	"conprobe/internal/vtime"
)

// Selection models interest-based read results: instead of the newest
// writes in store order, a read returns "a selection of writes based on a
// criteria that depends on the expected interest of these writes for the
// user issuing the read operation" (Section V, Facebook Feed).
//
// Entries younger than FreshFor are unstable: their relative order is
// perturbed per (reader, read) and each may be dropped from the result.
// Older entries are returned in stable store order, so selection-induced
// divergence heals as content ages.
type Selection struct {
	// FreshFor is the age below which an entry's ranking is unstable.
	FreshFor time.Duration
	// Shuffle in [0,1] is the probability that each adjacent pair of
	// fresh entries is swapped during ranking.
	Shuffle float64
	// DropFresh in [0,1] is the probability that a fresh entry is
	// omitted from a read result entirely.
	DropFresh float64
	// TopK, when positive, truncates the result to the K best-ranked
	// entries.
	TopK int
}

// apply ranks entries for one read. seed namespaces the service instance;
// reader and nonce make each (reader, read) ranking distinct but
// deterministic for a fixed campaign seed.
func (sel *Selection) apply(entries []store.Entry, clock vtime.Clock, seed int64, reader string, nonce uint64) []store.Entry {
	if sel == nil {
		return entries
	}
	rng := rand.New(rand.NewSource(selectionSeed(seed, reader, nonce)))
	cutoff := clock.Now().Add(-sel.FreshFor)

	out := make([]store.Entry, 0, len(entries))
	freshStart := -1
	for _, e := range entries {
		fresh := sel.FreshFor > 0 && !e.CreatedAt.Before(cutoff)
		if fresh && sel.DropFresh > 0 && rng.Float64() < sel.DropFresh {
			continue
		}
		out = append(out, e)
		if fresh && freshStart < 0 {
			freshStart = len(out) - 1
		}
	}
	if freshStart >= 0 && sel.Shuffle > 0 {
		for i := freshStart + 1; i < len(out); i++ {
			if rng.Float64() < sel.Shuffle {
				out[i-1], out[i] = out[i], out[i-1]
			}
		}
	}
	if sel.TopK > 0 && len(out) > sel.TopK {
		out = out[:sel.TopK]
	}
	return out
}

// selectionSeed derives a deterministic per-read seed.
func selectionSeed(seed int64, reader string, nonce uint64) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(reader))
	for i := 0; i < 8; i++ {
		buf[i] = byte(nonce >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return int64(h.Sum64())
}
