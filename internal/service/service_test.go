package service

import (
	"strconv"
	"testing"
	"time"

	"conprobe/internal/simnet"
	"conprobe/internal/store"
	"conprobe/internal/vtime"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newService(t *testing.T, p Profile, seed int64) (*vtime.Sim, *Simulated, *simnet.Network) {
	t.Helper()
	s := vtime.NewSim(epoch)
	net := simnet.DefaultTopology(seed, simnet.WithJitter(0))
	svc, err := NewSimulated(s, net, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s, svc, net
}

func postIDs(ps []Post) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

func strEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProfileByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%s): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("profile %s has name %s", name, p.Name)
		}
	}
	if _, err := ProfileByName("myspace"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if len(ProfileNames()) != 4 {
		t.Fatal("want 4 built-in profiles")
	}
}

func TestAllProfilesInstantiate(t *testing.T) {
	for _, name := range ProfileNames() {
		p, _ := ProfileByName(name)
		s := vtime.NewSim(epoch)
		net := simnet.DefaultTopology(1)
		if _, err := NewSimulated(s, net, p, 1); err != nil {
			t.Fatalf("NewSimulated(%s): %v", name, err)
		}
	}
}

func TestNewSimulatedValidation(t *testing.T) {
	s := vtime.NewSim(epoch)
	net := simnet.DefaultTopology(1)
	tests := []struct {
		name string
		p    Profile
	}{
		{"no name", Profile{Routing: map[simnet.Site]simnet.Site{simnet.Oregon: simnet.DCWest}}},
		{"no routing", Profile{Name: "x", Store: store.Config{Mode: store.Strong, Sites: []simnet.Site{simnet.DCWest}}}},
		{"route to non-replica", Profile{
			Name:    "x",
			Store:   store.Config{Mode: store.Strong, Sites: []simnet.Site{simnet.DCWest}},
			Routing: map[simnet.Site]simnet.Site{simnet.Oregon: simnet.DCAsia},
		}},
		{"bad store", Profile{
			Name:    "x",
			Routing: map[simnet.Site]simnet.Site{simnet.Oregon: simnet.DCWest},
			Store:   store.Config{Sites: []simnet.Site{simnet.DCWest}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSimulated(s, net, tt.p, 1); err == nil {
				t.Fatalf("accepted %s", tt.name)
			}
		})
	}
}

func TestBloggerWriteReadRoundTrip(t *testing.T) {
	s, svc, _ := newService(t, Blogger(), 1)
	s.Go(func() {
		t0 := s.Now()
		if err := svc.Write(simnet.Oregon, Post{ID: "m1", Author: "agent1", Body: "hi"}); err != nil {
			t.Error(err)
			return
		}
		// Oregon->DCEast RTT is 70ms plus the API processing delay of
		// 350ms±50%: total in [245ms, 595ms].
		if lat := s.Since(t0); lat < 245*time.Millisecond || lat > 595*time.Millisecond {
			t.Errorf("write latency = %v, want within [245ms, 595ms]", lat)
		}
		got, err := svc.Read(simnet.Tokyo, "agent2")
		if err != nil {
			t.Error(err)
			return
		}
		if !strEq(postIDs(got), []string{"m1"}) {
			t.Errorf("read = %v, want [m1]", postIDs(got))
		}
		if got[0].Author != "agent1" || got[0].Body != "hi" {
			t.Errorf("post fields lost: %+v", got[0])
		}
	})
	s.Wait()
}

func TestBloggerStronglyConsistentAcrossAgents(t *testing.T) {
	s, svc, _ := newService(t, Blogger(), 1)
	s.Go(func() {
		for i, from := range simnet.AgentSites() {
			id := "m" + strconv.Itoa(i+1)
			if err := svc.Write(from, Post{ID: id, Author: "a"}); err != nil {
				t.Error(err)
				return
			}
			// Immediately visible to every agent, in order.
			for _, rf := range simnet.AgentSites() {
				got, err := svc.Read(rf, "r")
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != i+1 {
					t.Errorf("after %s: agent at %s sees %d posts, want %d", id, rf, len(got), i+1)
				}
			}
		}
	})
	s.Wait()
}

func TestGooglePlusEventualVisibility(t *testing.T) {
	s, svc, _ := newService(t, GooglePlus(), 1)
	s.Go(func() {
		if err := svc.Write(simnet.Oregon, Post{ID: "m1", Author: "agent1"}); err != nil {
			t.Error(err)
			return
		}
		// Ireland reads from DCEurope: not yet propagated (>=1.2s delay).
		got, err := svc.Read(simnet.Ireland, "agent3")
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 0 {
			t.Errorf("remote read saw %v before propagation", postIDs(got))
		}
		// Tokyo shares DCWest with Oregon: immediately visible (modulo
		// small local-apply jitter <=60ms; Tokyo->DCWest is 50ms one-way,
		// so wait a touch).
		s.Sleep(100 * time.Millisecond)
		got, err = svc.Read(simnet.Tokyo, "agent2")
		if err != nil {
			t.Error(err)
			return
		}
		if !strEq(postIDs(got), []string{"m1"}) {
			t.Errorf("same-DC read = %v, want [m1]", postIDs(got))
		}
		// Eventually Ireland converges.
		s.Sleep(10 * time.Second)
		got, err = svc.Read(simnet.Ireland, "agent3")
		if err != nil {
			t.Error(err)
			return
		}
		if !strEq(postIDs(got), []string{"m1"}) {
			t.Errorf("remote read after propagation = %v", postIDs(got))
		}
	})
	s.Wait()
}

func TestFBGroupSameSecondReversal(t *testing.T) {
	s, svc, _ := newService(t, FBGroup(), 1)
	s.Go(func() {
		s.Sleep(50 * time.Millisecond) // land inside one second
		if err := svc.Write(simnet.Oregon, Post{ID: "m1", Author: "agent1"}); err != nil {
			t.Error(err)
			return
		}
		if err := svc.Write(simnet.Oregon, Post{ID: "m2", Author: "agent1"}); err != nil {
			t.Error(err)
			return
		}
		got, err := svc.Read(simnet.Ireland, "agent3")
		if err != nil {
			t.Error(err)
			return
		}
		if !strEq(postIDs(got), []string{"m2", "m1"}) {
			t.Errorf("same-second order = %v, want [m2 m1]", postIDs(got))
		}
	})
	s.Wait()
}

func TestFBFeedOwnWriteDelayedByIndexing(t *testing.T) {
	p := FBFeed()
	p.APIDelay = 0 // keep the read's arrival ahead of the indexing delay
	s, svc, _ := newService(t, p, 1)
	s.Go(func() {
		if err := svc.Write(simnet.Oregon, Post{ID: "m1", Author: "agent1"}); err != nil {
			t.Error(err)
			return
		}
		// Read immediately: indexing delay (>=260ms) hides the write;
		// read round trip is only 12ms.
		got, err := svc.Read(simnet.Oregon, "agent1")
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 0 {
			t.Errorf("own write visible before indexing: %v", postIDs(got))
		}
		s.Sleep(2 * time.Second)
		got, err = svc.Read(simnet.Oregon, "agent1")
		if err != nil {
			t.Error(err)
			return
		}
		if !strEq(postIDs(got), []string{"m1"}) {
			t.Errorf("own write never indexed: %v", postIDs(got))
		}
	})
	s.Wait()
}

func TestUnroutedClientRejected(t *testing.T) {
	s, svc, _ := newService(t, Blogger(), 1)
	s.Go(func() {
		if err := svc.Write(simnet.Virginia, Post{ID: "m1"}); err == nil {
			t.Error("unrouted write accepted")
		}
		if _, err := svc.Read(simnet.Virginia, "c"); err == nil {
			t.Error("unrouted read accepted")
		}
	})
	s.Wait()
}

func TestPartitionedClientGetsError(t *testing.T) {
	s, svc, net := newService(t, Blogger(), 1)
	s.Go(func() {
		net.Partition(simnet.Oregon, simnet.DCEast)
		if err := svc.Write(simnet.Oregon, Post{ID: "m1"}); err == nil {
			t.Error("write across partition succeeded")
		}
		if _, err := svc.Read(simnet.Oregon, "c"); err == nil {
			t.Error("read across partition succeeded")
		}
	})
	s.Wait()
}

func TestResetClearsState(t *testing.T) {
	s, svc, _ := newService(t, Blogger(), 1)
	s.Go(func() {
		if err := svc.Write(simnet.Oregon, Post{ID: "m1"}); err != nil {
			t.Error(err)
			return
		}
		if err := svc.Reset(); err != nil {
			t.Error(err)
			return
		}
		got, err := svc.Read(simnet.Oregon, "c")
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 0 {
			t.Errorf("state survived Reset: %v", postIDs(got))
		}
	})
	s.Wait()
}

func TestReadFlapServesOtherReplica(t *testing.T) {
	p := GooglePlus()
	p.ReadFlapProb = 1 // always flap
	s, svc, _ := newService(t, p, 1)
	s.Go(func() {
		if err := svc.Write(simnet.Oregon, Post{ID: "m1", Author: "agent1"}); err != nil {
			t.Error(err)
			return
		}
		s.Sleep(200 * time.Millisecond)
		// Oregon's home DC has the write by now, but a flapped read goes
		// to DCEurope, which cannot have it yet (>=1.2s propagation).
		got, err := svc.Read(simnet.Oregon, "agent1")
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 0 {
			t.Errorf("flapped read saw %v", postIDs(got))
		}
	})
	s.Wait()
}

func TestSelectionShuffleAndDrop(t *testing.T) {
	entries := []store.Entry{
		{ID: "m1", CreatedAt: epoch},
		{ID: "m2", CreatedAt: epoch},
		{ID: "m3", CreatedAt: epoch},
		{ID: "m4", CreatedAt: epoch},
	}
	s := vtime.NewSim(epoch.Add(time.Second))
	sel := &Selection{FreshFor: time.Hour, Shuffle: 0.5, DropFresh: 0.25}
	differed, dropped := false, false
	for nonce := uint64(0); nonce < 50; nonce++ {
		got := sel.apply(entries, s, 7, "reader", nonce)
		if len(got) < 4 {
			dropped = true
		}
		ids := make([]string, len(got))
		for i, e := range got {
			ids[i] = e.ID
		}
		if !strEq(ids, []string{"m1", "m2", "m3", "m4"}) {
			differed = true
		}
	}
	if !differed {
		t.Error("shuffle never reordered fresh entries")
	}
	if !dropped {
		t.Error("drop never omitted fresh entries")
	}
}

func TestSelectionStableForOldEntries(t *testing.T) {
	old := epoch.Add(-time.Hour)
	entries := []store.Entry{
		{ID: "m1", CreatedAt: old},
		{ID: "m2", CreatedAt: old},
	}
	s := vtime.NewSim(epoch)
	sel := &Selection{FreshFor: time.Minute, Shuffle: 1, DropFresh: 1}
	for nonce := uint64(0); nonce < 20; nonce++ {
		got := sel.apply(entries, s, 7, "reader", nonce)
		if len(got) != 2 || got[0].ID != "m1" || got[1].ID != "m2" {
			t.Fatalf("aged entries perturbed: %+v", got)
		}
	}
}

func TestSelectionDeterministicPerReadKey(t *testing.T) {
	entries := []store.Entry{
		{ID: "m1", CreatedAt: epoch}, {ID: "m2", CreatedAt: epoch},
		{ID: "m3", CreatedAt: epoch}, {ID: "m4", CreatedAt: epoch},
	}
	s := vtime.NewSim(epoch.Add(time.Second))
	sel := &Selection{FreshFor: time.Hour, Shuffle: 0.5}
	a := sel.apply(entries, s, 7, "reader", 3)
	b := sel.apply(entries, s, 7, "reader", 3)
	if len(a) != len(b) {
		t.Fatal("nondeterministic selection")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("nondeterministic selection order")
		}
	}
}

func TestSelectionTopK(t *testing.T) {
	entries := []store.Entry{
		{ID: "m1", CreatedAt: epoch.Add(-time.Hour)},
		{ID: "m2", CreatedAt: epoch.Add(-time.Hour)},
		{ID: "m3", CreatedAt: epoch.Add(-time.Hour)},
	}
	s := vtime.NewSim(epoch)
	sel := &Selection{TopK: 2}
	got := sel.apply(entries, s, 7, "r", 1)
	if len(got) != 2 {
		t.Fatalf("TopK not applied: %d", len(got))
	}
}

func TestNilSelectionIdentity(t *testing.T) {
	var sel *Selection
	entries := []store.Entry{{ID: "m1"}}
	s := vtime.NewSim(epoch)
	got := sel.apply(entries, s, 7, "r", 1)
	if len(got) != 1 || got[0].ID != "m1" {
		t.Fatal("nil selection must be identity")
	}
}

func TestAPIDelayBounds(t *testing.T) {
	p := Blogger() // APIDelay 350ms
	s, svc, _ := newService(t, p, 3)
	s.Go(func() {
		for i := 0; i < 20; i++ {
			t0 := s.Now()
			if err := svc.Write(simnet.Oregon, Post{ID: strconv.Itoa(i)}); err != nil {
				t.Error(err)
				return
			}
			// RTT 70ms + API in [175, 525): total in [245, 595).
			lat := s.Since(t0)
			if lat < 245*time.Millisecond || lat >= 595*time.Millisecond {
				t.Errorf("write %d latency %v out of range", i, lat)
				return
			}
		}
	})
	s.Wait()
}

func TestFlapNeverRoutesHome(t *testing.T) {
	// With flap probability 1 and only two replicas, every flapped read
	// must go to the remote replica; combined with a fresh local write,
	// the read result is empty every time.
	p := GooglePlus()
	p.ReadFlapProb = 1
	p.APIDelay = 0
	s, svc, _ := newService(t, p, 5)
	s.Go(func() {
		if err := svc.Write(simnet.Oregon, Post{ID: "m1", Author: "a1"}); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 10; i++ {
			got, err := svc.Read(simnet.Oregon, "a1")
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != 0 {
				t.Errorf("flapped read %d saw home data: %v", i, postIDs(got))
				return
			}
			s.Sleep(20 * time.Millisecond)
		}
	})
	s.Wait()
}

func TestGooglePlusFastEpochSkipsBacklog(t *testing.T) {
	// Force every epoch fast: remote visibility within network one-way
	// (plus nothing else).
	p := GooglePlus()
	p.Store.FastEpochProb = 1
	p.ReadFlapProb = 0
	p.APIDelay = 0
	s, svc, _ := newService(t, p, 2)
	s.Go(func() {
		if err := svc.Write(simnet.Oregon, Post{ID: "m1", Author: "a1"}); err != nil {
			t.Error(err)
			return
		}
		// DCWest->DCEurope one-way is 65ms; by 100ms Ireland must see it.
		s.Sleep(100 * time.Millisecond)
		got, err := svc.Read(simnet.Ireland, "a3")
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 1 {
			t.Errorf("fast epoch did not propagate promptly: %v", postIDs(got))
		}
	})
	s.Wait()
}
