package service

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"conprobe/internal/detrand"
	"conprobe/internal/simnet"
	"conprobe/internal/store"
	"conprobe/internal/vtime"
)

// Profile declares everything needed to instantiate a simulated service:
// its replicated-store configuration, how agent locations route to data
// centers, and read-time behaviors.
type Profile struct {
	// Name identifies the profile ("blogger", "googleplus", ...).
	Name string
	// Store configures the replication back-end.
	Store store.Config
	// Routing maps each client location to the data center serving it.
	Routing map[simnet.Site]simnet.Site
	// Selection, when non-nil, applies interest-based read selection.
	Selection *Selection
	// ReadFlapProb is the probability that a read is served by a random
	// replica other than the client's home data center (load-balancer
	// flaps; a source of read-your-writes and monotonic-reads anomalies
	// on weakly consistent services).
	ReadFlapProb float64
	// APIDelay is the mean server-side processing time per request,
	// sampled uniformly in [0.5*APIDelay, 1.5*APIDelay). Social-network
	// APIs of the paper's era took hundreds of milliseconds per call,
	// which lets fast replication finish before the caller's next read.
	APIDelay time.Duration
}

// TestScoped is implemented by services (and service wrappers) whose
// deterministic draws depend on cumulative per-run counters. BeginTest
// rebases that state onto the test ID, making every draw a pure
// function of (seed, test ID, per-test operation history) instead of
// campaign-lifetime history. That is what lets a resumed campaign —
// which never lived through the earlier tests — reproduce the
// remaining tests byte-for-byte. Implementations must be idempotent
// per id: wrappers fan BeginTest down to a shared base service, so the
// base may see the same id several times per test. Services without
// cross-test state simply don't implement the interface.
type TestScoped interface {
	BeginTest(id int)
}

// nonceStripes is the lock stripe count for per-reader read counters;
// concurrent readers almost always hash to different stripes.
const nonceStripes = 16

// nonceStripe is one lock stripe of the per-reader read counters.
type nonceStripe struct {
	mu     sync.Mutex
	nonces map[string]uint64
}

// Simulated is a Service built from a Profile over a simulated network.
type Simulated struct {
	name    string
	clock   vtime.Clock
	net     *simnet.Network
	cluster *store.Cluster
	profile Profile
	seed    int64

	// round is the current test ID (0 outside campaigns, e.g. the live
	// consvc path, which never calls BeginTest and so behaves exactly as
	// before). It scopes the read nonces below.
	round atomic.Int64

	stripes [nonceStripes]nonceStripe
}

var _ Service = (*Simulated)(nil)

// NewSimulated instantiates the profile over the given clock and network.
func NewSimulated(clock vtime.Clock, net *simnet.Network, p Profile, seed int64) (*Simulated, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("service: profile has no name")
	}
	if len(p.Routing) == 0 {
		return nil, fmt.Errorf("service %s: empty routing table", p.Name)
	}
	replicas := make(map[simnet.Site]bool, len(p.Store.Sites))
	for _, s := range p.Store.Sites {
		replicas[s] = true
	}
	for from, dc := range p.Routing {
		if !replicas[dc] {
			return nil, fmt.Errorf("service %s: %s routes to %s, which hosts no replica", p.Name, from, dc)
		}
	}
	cluster, err := store.NewCluster(clock, net, p.Store, seed)
	if err != nil {
		return nil, fmt.Errorf("service %s: %w", p.Name, err)
	}
	s := &Simulated{
		name:    p.Name,
		clock:   clock,
		net:     net,
		cluster: cluster,
		profile: p,
		seed:    seed,
	}
	for i := range s.stripes {
		s.stripes[i].nonces = make(map[string]uint64)
	}
	return s, nil
}

// Name returns the profile name.
func (s *Simulated) Name() string { return s.name }

// Cluster exposes the underlying replicated store (used by ablation
// benchmarks and white-box tests).
func (s *Simulated) Cluster() *store.Cluster { return s.cluster }

// route returns the home data center for a client location.
func (s *Simulated) route(from simnet.Site) (simnet.Site, error) {
	dc, ok := s.profile.Routing[from]
	if !ok {
		return "", fmt.Errorf("service %s: no route for client at %s", s.name, from)
	}
	return dc, nil
}

// travel sleeps one keyed one-way delay between a and b.
func (s *Simulated) travel(a, b simnet.Site, k detrand.Key) error {
	d, err := s.net.OneWayU(a, b, k.Float64())
	if err != nil {
		return err
	}
	s.clock.Sleep(d)
	return nil
}

// inbound covers the client→DC leg plus server-side processing as ONE
// scheduler sleep. Both delays derive from independent keys ("go",
// "api"), so drawing them up front and sleeping their sum leaves every
// delay value and the instant the store operation executes unchanged —
// it only halves the inbound path's scheduler round-trips.
func (s *Simulated) inbound(from, dc simnet.Site, k detrand.Key) error {
	d, err := s.net.OneWayU(from, dc, k.Str("go").Float64())
	if err != nil {
		return err
	}
	d += s.processDelay(k.Str("api"))
	if d > 0 {
		s.clock.Sleep(d)
	}
	return nil
}

// Write publishes p, paying the round trip to the client's data center.
func (s *Simulated) Write(from simnet.Site, p Post) error {
	dc, err := s.route(from)
	if err != nil {
		return err
	}
	if !s.net.Reachable(from, dc) {
		return fmt.Errorf("service %s: %s cannot reach %s", s.name, from, dc)
	}
	// All of this write's random delays key off its unique post ID.
	k := detrand.NewKey(s.seed, "write").Str(p.ID)
	if err := s.inbound(from, dc, k); err != nil {
		return err
	}
	entry := store.Entry{ID: p.ID, Author: p.Author, Body: p.Body, DependsOn: p.DependsOn}
	if _, err := s.cluster.WriteEntry(dc, entry); err != nil {
		return err
	}
	return s.travel(dc, from, k.Str("back"))
}

// processDelay returns the keyed server-side handling time.
func (s *Simulated) processDelay(k detrand.Key) time.Duration {
	d := s.profile.APIDelay
	if d <= 0 {
		return 0
	}
	f := 0.5 + k.Float64()
	return time.Duration(float64(d) * f)
}

// Read lists the posts reader currently observes from the given location.
func (s *Simulated) Read(from simnet.Site, reader string) ([]Post, error) {
	dc, err := s.route(from)
	if err != nil {
		return nil, err
	}
	// All of this read's random choices key off (reader, read number).
	nonce := s.nextNonce(reader)
	k := detrand.NewKey(s.seed, "read").Str(reader).Uint(nonce)
	dc = s.maybeFlap(dc, k.Str("flap"))
	if !s.net.Reachable(from, dc) {
		return nil, fmt.Errorf("service %s: %s cannot reach %s", s.name, from, dc)
	}
	if err := s.inbound(from, dc, k); err != nil {
		return nil, err
	}
	entries, err := s.cluster.Read(dc)
	if err != nil {
		return nil, err
	}
	entries = s.profile.Selection.apply(entries, s.clock, s.seed, reader, nonce)
	if err := s.travel(dc, from, k.Str("back")); err != nil {
		return nil, err
	}
	out := make([]Post, len(entries))
	for i, e := range entries {
		out[i] = Post{
			ID: e.ID, Author: e.Author, Body: e.Body,
			CreatedAt: e.CreatedAt, DependsOn: e.DependsOn,
		}
	}
	return out, nil
}

// maybeFlap occasionally substitutes a different replica for the home
// DC; the decision and the choice both derive from the read's key.
func (s *Simulated) maybeFlap(home simnet.Site, k detrand.Key) simnet.Site {
	p := s.profile.ReadFlapProb
	if p <= 0 {
		return home
	}
	if k.Float64() >= p {
		return home
	}
	sites := s.cluster.Sites()
	others := sites[:0]
	for _, site := range sites {
		if site != home {
			others = append(others, site)
		}
	}
	if len(others) == 0 {
		return home
	}
	return others[k.Str("choice").Intn(int64(len(others)))]
}

// nextNonce numbers reads per (round, reader), keeping selection
// deterministic for a fixed seed regardless of goroutine interleaving
// between concurrent readers. The round (test ID) occupies the high
// bits so a test's read keys depend only on that test's own reads —
// never on how many reads earlier tests performed — which is what
// makes a resumed campaign replay identically. Counters are
// lock-striped by reader so parallel readers do not serialize on one
// mutex.
func (s *Simulated) nextNonce(reader string) uint64 {
	h := fnv.New32a()
	h.Write([]byte(reader))
	st := &s.stripes[h.Sum32()%nonceStripes]
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nonces[reader]++
	return uint64(s.round.Load())<<20 | st.nonces[reader]
}

// epochStride spaces the store epochs claimed by successive tests.
// Each test performs a handful of ordinary Resets (the runner resets
// the service and every wrapped client, all reaching the same
// cluster), each advancing the epoch by one; 64 leaves ample headroom
// while keeping test N's epoch a pure function of N.
const epochStride = 64

// BeginTest scopes the service's deterministic state to test id: read
// nonces restart per reader and the store jumps to the test's own
// epoch. Idempotent per id — wrappers may forward it more than once.
func (s *Simulated) BeginTest(id int) {
	if s.round.Load() == int64(id) {
		return
	}
	s.round.Store(int64(id))
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.nonces = make(map[string]uint64)
		st.mu.Unlock()
	}
	s.cluster.BeginEpoch(uint64(id) * epochStride)
}

// Reset clears the replicated store between tests.
func (s *Simulated) Reset() error {
	s.cluster.Reset()
	return nil
}
