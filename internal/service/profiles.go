package service

import (
	"fmt"
	"time"

	"conprobe/internal/simnet"
	"conprobe/internal/store"
)

// The four service profiles of the paper's measurement study (Section V).
// Parameter values are the simulator's calibration: they were chosen so
// that the anomaly prevalence and divergence-window shapes produced by
// the Test 1 / Test 2 campaigns track Figures 3-10; EXPERIMENTS.md records
// the paper-vs-measured comparison.
const (
	NameBlogger    = "blogger"
	NameGooglePlus = "googleplus"
	NameFBFeed     = "fbfeed"
	NameFBGroup    = "fbgroup"
)

// ProfileNames lists the built-in profiles in the paper's order.
func ProfileNames() []string {
	return []string{NameGooglePlus, NameBlogger, NameFBFeed, NameFBGroup}
}

// ProfileByName returns the built-in profile with the given name.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case NameBlogger:
		return Blogger(), nil
	case NameGooglePlus:
		return GooglePlus(), nil
	case NameFBFeed:
		return FBFeed(), nil
	case NameFBGroup:
		return FBGroup(), nil
	default:
		return Profile{}, fmt.Errorf("service: unknown profile %q", name)
	}
}

// Blogger models the Blogger API: a single primary data center with
// synchronous replication. The paper detected no anomalies of any type,
// consistent with strong consistency — "a sensible design choice
// considering the write rate and user base size in Blogger".
func Blogger() Profile {
	return Profile{
		Name: NameBlogger,
		Store: store.Config{
			Mode:  store.Strong,
			Sites: []simnet.Site{simnet.DCEast},
		},
		Routing: map[simnet.Site]simnet.Site{
			simnet.Oregon:  simnet.DCEast,
			simnet.Tokyo:   simnet.DCEast,
			simnet.Ireland: simnet.DCEast,
		},
		APIDelay: 350 * time.Millisecond,
	}
}

// GooglePlus models the Google+ moments API: weakly consistent
// replication across two data centers, with Oregon and Tokyo served by
// the same (US-west) data center — the paper's explanation for the much
// lower divergence between that pair — and Ireland by a European one.
// Replication is slow (seconds), giving the long content/order divergence
// windows of Figures 9(a)/10(a); fresh entries surface in arrival order
// and are re-ranked in the background (OrderHybrid), producing transient
// order divergence between data centers; occasional reads served by the
// remote replica yield the sporadic read-your-writes and monotonic-reads
// anomalies.
func GooglePlus() Profile {
	return Profile{
		Name: NameGooglePlus,
		Store: store.Config{
			Mode:              store.Eventual,
			Sites:             []simnet.Site{simnet.DCWest, simnet.DCEurope},
			PropagationBase:   800 * time.Millisecond,
			PropagationJitter: 950 * time.Millisecond,
			EpochJitter:       10 * time.Second,
			FastEpochProb:     0.15,
			LocalApplyJitter:  50 * time.Millisecond,
			Order:             store.OrderHybrid,
			NormalizeAfter:    11 * time.Second,
			HybridEpochProb:   0.17,
		},
		Routing: map[simnet.Site]simnet.Site{
			simnet.Oregon:  simnet.DCWest,
			simnet.Tokyo:   simnet.DCWest,
			simnet.Ireland: simnet.DCEurope,
		},
		ReadFlapProb: 0.011,
		APIDelay:     350 * time.Millisecond,
	}
}

// FBFeed models the Facebook news feed through the Graph API: three data
// centers, asynchronous indexing that delays even the writer's own
// visibility (the near-universal read-your-writes violations of Figure
// 3), and interest-based read selection that perturbs the order and
// membership of fresh posts per read (the near-100% order divergence and
// frequent monotonic-writes/reads violations).
func FBFeed() Profile {
	return Profile{
		Name: NameFBFeed,
		Store: store.Config{
			Mode:              store.Eventual,
			Sites:             []simnet.Site{simnet.DCWest, simnet.DCAsia, simnet.DCEurope},
			PropagationBase:   500 * time.Millisecond,
			PropagationJitter: 700 * time.Millisecond,
			EpochJitter:       1500 * time.Millisecond,
			FastEpochProb:     0.35,
			LocalApplyDelay:   260 * time.Millisecond,
			LocalApplyJitter:  260 * time.Millisecond,
			Order:             store.OrderHybrid,
			NormalizeAfter:    3 * time.Second,
		},
		Routing: map[simnet.Site]simnet.Site{
			simnet.Oregon:  simnet.DCWest,
			simnet.Tokyo:   simnet.DCAsia,
			simnet.Ireland: simnet.DCEurope,
		},
		Selection: &Selection{
			FreshFor:  4 * time.Second,
			Shuffle:   0.065,
			DropFresh: 0.016,
		},
		APIDelay: 300 * time.Millisecond,
	}
}

// FBGroup models the Facebook Group feed: near-synchronous replication
// (content divergence is rare), but creation timestamps have one-second
// precision with a deterministic reversed tie-break, so two writes issued
// by an agent within the same second are always observed in reverse order
// — the mechanism behind the 93% monotonic-writes prevalence the paper
// uncovered. Tokyo is served by a separate data center, whose transient
// partition from the rest reproduces the Tokyo-only content-divergence
// streak of Figure 8.
func FBGroup() Profile {
	return Profile{
		Name: NameFBGroup,
		Store: store.Config{
			Mode:              store.Eventual,
			Sites:             []simnet.Site{simnet.DCEast, simnet.DCAsia},
			PropagationBase:   5 * time.Millisecond,
			PropagationJitter: 15 * time.Millisecond,
			Policy: store.TimestampPolicy{
				Precision:   time.Second,
				ReverseTies: true,
			},
			RetryInterval: 500 * time.Millisecond,
		},
		Routing: map[simnet.Site]simnet.Site{
			simnet.Oregon:  simnet.DCEast,
			simnet.Tokyo:   simnet.DCAsia,
			simnet.Ireland: simnet.DCEast,
		},
		APIDelay: 380 * time.Millisecond,
	}
}
