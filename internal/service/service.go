// Package service defines the black-box online-service abstraction that
// measurement agents probe, together with simulated implementations of
// the four services the paper studied: Blogger, Google+, Facebook Feed
// and Facebook Group.
//
// Each simulated service combines a geo-replicated store.Cluster, a
// routing table mapping agent locations to data centers, and optional
// read-time behaviors (interest-based selection for Facebook Feed,
// occasional reads served by a remote replica for Google+). Client-
// perceived latency is modeled by sleeping the one-way network delay on
// each leg of a request, so operation invocation/response timestamps in
// the collected traces carry realistic wide-area timing.
package service

import (
	"time"

	"conprobe/internal/simnet"
)

// Post is one message as seen through a service API.
type Post struct {
	// ID is the client-assigned unique identifier.
	ID string
	// Author is the posting agent's label.
	Author string
	// Body is the message content.
	Body string
	// CreatedAt is the service-assigned creation stamp at the precision
	// the service exposes.
	CreatedAt time.Time
	// DependsOn optionally names a post this one causally follows (the
	// writer reacted to observing it). Services ignore it; the session
	// middleware uses it to enforce Writes Follows Reads by delaying
	// delivery of a post until its cause is visible.
	DependsOn string
}

// Service is the API surface probed by agents: post a message, list the
// current sequence of messages (Section IV: "the notion of a read or a
// write operation is specific to each service").
type Service interface {
	// Name identifies the service profile (e.g. "googleplus").
	Name() string

	// Write publishes p on behalf of an agent located at from. It
	// returns once the service has acknowledged the write.
	Write(from simnet.Site, p Post) error

	// Read returns the sequence of posts currently observable by reader
	// (an agent label) from the given location, in service order.
	Read(from simnet.Site, reader string) ([]Post, error)

	// Reset clears all service state; campaigns call it between tests. A
	// failed reset must be reported: silently carrying the previous
	// test's posts into the next trace would corrupt every checker.
	Reset() error
}
