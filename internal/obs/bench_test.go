package obs

import "testing"

// BenchmarkMetricsHotPath measures the instrumented fast path — one
// counter increment plus one histogram observation, the cost every
// probe-engine operation pays when metrics are on. The contract is a
// few ns/op and 0 allocs/op (also pinned by TestMetricsHotPathAllocs).
func BenchmarkMetricsHotPath(b *testing.B) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")
	c := sc.Counter("ops_total", "")
	h := sc.Histogram("wait_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.001)
	}
}

// BenchmarkMetricsHotPathParallel measures the same path under
// contention from all cores — the shape the lane engine produces.
func BenchmarkMetricsHotPathParallel(b *testing.B) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")
	c := sc.Counter("ops_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkSnapshot measures exposition cost on a realistically sized
// registry (~100 series) — the price of one /metrics scrape.
func BenchmarkSnapshot(b *testing.B) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")
	for lane := 0; lane < 8; lane++ {
		ls := sc.Sub("engine").With("lane", string(rune('0'+lane)))
		ls.Counter("tests_started_total", "x").Inc()
		ls.Counter("tests_finished_total", "x").Inc()
		ls.Sub("resilience").Counter("retries_total", "x").Inc()
	}
	sc.Histogram("queue_wait_seconds", "x", nil).Observe(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot()
	}
}
