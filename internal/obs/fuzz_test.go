package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzMetricsExposition drives registration and exposition with
// arbitrary names, label values and samples: neither exposition form
// may panic, the JSON form must stay parseable and round-trip the
// counter value, and the Prometheus text form must contain only
// well-formed sample lines.
func FuzzMetricsExposition(f *testing.F) {
	f.Add("conprobe_engine", "tests_total", "lane", "3", 1.5, uint64(7))
	f.Add("", "", "", "", 0.0, uint64(0))
	f.Add("weird name", "a{b}c", "k\"", "v\\\"\n", -12.25, uint64(1))
	f.Add("läne", "9lives", "le", "+Inf", math.MaxFloat64, uint64(1<<62))
	f.Add("a", "b_total", "k", "v", 1e-9, uint64(3))

	f.Fuzz(func(t *testing.T, prefix, name, lkey, lval string, obsv float64, incs uint64) {
		if math.IsNaN(obsv) || math.IsInf(obsv, 0) {
			obsv = 0 // histograms of non-finite samples are out of contract
		}
		incs %= 1 << 20

		reg := NewRegistry()
		sc := reg.Scope(prefix).With(lkey, lval)
		c := sc.Counter(name, "fuzzed counter")
		c.Add(incs)
		g := sc.Sub("g").Gauge(name, "fuzzed gauge")
		g.Set(obsv)
		h := sc.Sub("h").Histogram(name, "fuzzed histogram", nil)
		h.Observe(obsv)

		snap := reg.Snapshot()
		if len(snap) != 3 {
			t.Fatalf("got %d series, want 3", len(snap))
		}

		// JSON form: must parse, and the counter value must round-trip.
		var jbuf bytes.Buffer
		if err := snap.WriteJSON(&jbuf); err != nil {
			t.Fatal(err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(jbuf.Bytes(), &decoded); err != nil {
			t.Fatalf("JSON form does not parse: %v\n%s", err, jbuf.String())
		}
		var counterName string
		for _, p := range snap {
			if p.Type == "counter" {
				counterName = p.Name
			}
		}
		if got, ok := decoded[counterName].(float64); !ok || got != float64(incs) {
			t.Fatalf("counter %q did not round-trip: got %v want %d", counterName, decoded[counterName], incs)
		}

		// Snapshot must also survive encoding/json (EngineStats path).
		if _, err := json.Marshal(snap); err != nil {
			t.Fatalf("json.Marshal(snapshot): %v", err)
		}

		// Prometheus text form: every non-comment line is "series value",
		// and family names use only the legal alphabet.
		var pbuf bytes.Buffer
		if err := snap.WritePrometheus(&pbuf); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimRight(pbuf.String(), "\n"), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp <= 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			series, value := line[:sp], line[sp+1:]
			family, _ := splitSeries(series)
			for i := 0; i < len(family); i++ {
				ch := family[i]
				ok := ch == '_' || ch == ':' ||
					(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
				if !ok {
					t.Fatalf("family %q contains illegal byte %q", family, ch)
				}
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("sample value %q in line %q does not parse: %v", value, line, err)
			}
		}

		// Determinism: a second snapshot of the same registry exposes the
		// same bytes.
		var pbuf2 bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&pbuf2); err != nil {
			t.Fatal(err)
		}
		if pbuf.String() != pbuf2.String() {
			t.Fatal("two snapshots of an unchanged registry differ")
		}
	})
}
