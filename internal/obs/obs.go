// Package obs is the self-measurement layer of the probing stack: a
// dependency-free registry of atomic counters, gauges and histograms,
// threaded through the engine as a Scope handle.
//
// The paper's own contribution is measurement, and Rahman et al. argue a
// benchmark is only trustworthy when the harness reports its own
// overheads; obs gives the campaign engine, the resilience middleware,
// the fault injector, the HTTP facade and the streaming aggregator that
// self-reporting without pulling in a metrics dependency.
//
// Design constraints, in order:
//
//   - Observed, never fed back: nothing in the engine reads a metric to
//     make a decision, so instrumentation cannot perturb the
//     byte-identical-output-at-any-parallelism guarantee.
//   - Zero-alloc hot path: metric handles are registered once at setup
//     (names, labels and help text are resolved then); Inc/Add/Set/
//     Observe are lock-free atomic operations with no allocation
//     (verified by TestMetricsHotPathAllocs and BenchmarkMetricsHotPath).
//   - Deterministic exposition: Snapshot orders series by (family,
//     labels), so two runs that performed the same work expose the same
//     bytes.
//
// A nil *Scope is fully functional: every constructor returns a live,
// unregistered metric, so instrumented code never branches on "is
// monitoring on".
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 that can move in both directions (lane
// counts, breaker state, last merge duration).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram upper bounds, in seconds:
// microseconds through a minute, matching the latencies this engine
// sees (queue waits, backoff sleeps, merge passes).
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60}

// Histogram is a fixed-bucket atomic histogram. Bounds are set at
// registration; Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records v (typically seconds).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered series.
type metric struct {
	name string // full series name, labels included
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram
// through a Scope) takes a lock; the returned handles are lock-free.
// Registering the same name twice returns the same metric, so two lanes
// (or two tests) asking for one series share it.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Scope returns a handle that registers metrics under prefix (e.g.
// "conprobe"). The Scope is the unit threaded through the stack;
// subsystems derive sub-scopes and labels from it.
func (r *Registry) Scope(prefix string) *Scope {
	if prefix != "" {
		prefix = sanitizeName(prefix)
	}
	return &Scope{reg: r, prefix: prefix}
}

// lookup returns the metric registered under name, creating it with
// build when absent. A name collision across kinds keeps the first
// registration (the second caller gets a live but unregistered metric,
// never a panic mid-campaign).
func (r *Registry) lookup(name, help string, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := build()
	m.name = name
	m.help = help
	r.metrics[name] = m
	return m
}

// label is one name="value" pair.
type label struct {
	key, value string
}

// Scope names a subsystem's corner of a Registry: a name prefix plus a
// fixed label set applied to every metric registered through it. Scopes
// are cheap immutable values; Sub and With derive new ones. A nil Scope
// (or one from a nil Registry) returns live, unregistered metrics, so
// instrumented code is written once and works with monitoring off.
type Scope struct {
	reg    *Registry
	prefix string
	labels []label
}

// Registry returns the underlying registry (nil for a nil Scope) for
// exposition: snapshots, /metrics handlers.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Sub returns a scope whose prefix is extended with name ("conprobe" →
// "conprobe_engine").
func (s *Scope) Sub(name string) *Scope {
	if s == nil {
		return nil
	}
	p := sanitizeName(name)
	if s.prefix != "" {
		p = s.prefix + "_" + p
	}
	return &Scope{reg: s.reg, prefix: p, labels: s.labels}
}

// With returns a scope that stamps the extra label on every metric
// registered through it (the engine labels each lane's scope with
// lane="N").
func (s *Scope) With(key, value string) *Scope {
	if s == nil {
		return nil
	}
	ls := make([]label, 0, len(s.labels)+1)
	ls = append(ls, s.labels...)
	ls = append(ls, label{key: sanitizeName(key), value: value})
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].key < ls[j].key })
	return &Scope{reg: s.reg, prefix: s.prefix, labels: ls}
}

// seriesName renders the full series name: prefix_name{k="v",...}.
func (s *Scope) seriesName(name string) string {
	n := sanitizeName(name)
	if s.prefix != "" {
		n = s.prefix + "_" + n
	}
	if len(s.labels) == 0 {
		return n
	}
	var b strings.Builder
	b.WriteString(n)
	b.WriteByte('{')
	for i, l := range s.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter registers (or finds) a counter named prefix_name with the
// scope's labels. Registration cost is paid here, once; the returned
// handle's Inc/Add are zero-alloc atomics.
func (s *Scope) Counter(name, help string) *Counter {
	if s == nil || s.reg == nil {
		return &Counter{}
	}
	m := s.reg.lookup(s.seriesName(name), help, func() *metric { return &metric{c: &Counter{}} })
	if m.c == nil {
		return &Counter{} // name already taken by another kind
	}
	return m.c
}

// Gauge registers (or finds) a gauge.
func (s *Scope) Gauge(name, help string) *Gauge {
	if s == nil || s.reg == nil {
		return &Gauge{}
	}
	m := s.reg.lookup(s.seriesName(name), help, func() *metric { return &metric{g: &Gauge{}} })
	if m.g == nil {
		return &Gauge{}
	}
	return m.g
}

// Histogram registers (or finds) a histogram with the given bucket
// upper bounds (nil = DefBuckets).
func (s *Scope) Histogram(name, help string, bounds []float64) *Histogram {
	if s == nil || s.reg == nil {
		return newHistogram(bounds)
	}
	m := s.reg.lookup(s.seriesName(name), help, func() *metric { return &metric{h: newHistogram(bounds)} })
	if m.h == nil {
		return newHistogram(bounds)
	}
	return m.h
}

// sanitizeName maps s onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:], replacing every other byte with '_'. A leading digit
// gets a '_' prefix; empty input becomes "_".
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			if b == nil {
				b = []byte(s)
			}
			b[i] = '_'
		}
	}
	out := s
	if b != nil {
		out = string(b)
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// escapeLabelValue escapes a label value for the exposition formats:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
