package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound in the observed
	// unit (seconds for latency histograms); +Inf for the last bucket.
	UpperBound float64 `json:"le"`
	// CumulativeCount counts observations at or below UpperBound.
	CumulativeCount uint64 `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket survives
// encoding/json (which rejects infinite float values).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if b.UpperBound != inf {
		le = fmtFloat(b.UpperBound)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.CumulativeCount)), nil
}

// Point is one series in a snapshot.
type Point struct {
	// Name is the full series name, labels included.
	Name string `json:"name"`
	// Type is "counter", "gauge" or "histogram".
	Type string `json:"type"`
	// Help is the series' registration help text.
	Help string `json:"help,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value"`
	// Count, Sum and Buckets carry histograms.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered series, ordered
// deterministically by (family, labels). Two runs that performed the
// same operations produce byte-identical expositions.
type Snapshot []Point

// Get returns the point with the given full series name, or nil.
func (s Snapshot) Get(name string) *Point {
	for i := range s {
		if s[i].Name == name {
			return &s[i]
		}
	}
	return nil
}

// Value returns the named counter/gauge value (0 when absent) — a test
// and scripting convenience.
func (s Snapshot) Value(name string) float64 {
	if p := s.Get(name); p != nil {
		return p.Value
	}
	return 0
}

// splitSeries separates a full series name into its family and label
// part ("f_total{lane=\"1\"}" → "f_total", "{lane=\"1\"}").
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Snapshot copies every registered series. Ordering is by family name,
// then label string, so series of one family are contiguous (the
// Prometheus exposition needs that for its one-HELP-per-family rule)
// and the order never depends on registration interleaving.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		fi, li := splitSeries(ms[i].name)
		fj, lj := splitSeries(ms[j].name)
		if fi != fj {
			return fi < fj
		}
		return li < lj
	})
	out := make(Snapshot, 0, len(ms))
	for _, m := range ms {
		p := Point{Name: m.name, Help: m.help}
		switch {
		case m.c != nil:
			p.Type = "counter"
			p.Value = float64(m.c.Value())
		case m.g != nil:
			p.Type = "gauge"
			p.Value = m.g.Value()
		case m.h != nil:
			p.Type = "histogram"
			p.Count = m.h.Count()
			p.Sum = m.h.Sum()
			var cum uint64
			for i, bound := range m.h.bounds {
				cum += m.h.buckets[i].Load()
				p.Buckets = append(p.Buckets, Bucket{UpperBound: bound, CumulativeCount: cum})
			}
			cum += m.h.buckets[len(m.h.bounds)].Load()
			p.Buckets = append(p.Buckets, Bucket{UpperBound: inf, CumulativeCount: cum})
		}
		out = append(out, p)
	}
	return out
}

var inf = math.Inf(1)

// fmtFloat renders a float the way both exposition formats want it:
// shortest round-trip representation, integers without an exponent.
func fmtFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes the snapshot as one expvar-style JSON object:
// counters and gauges as numbers, histograms as objects with count, sum
// and cumulative bucket map. Keys appear in snapshot (deterministic)
// order.
func (s Snapshot) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n")
	for i, p := range s {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  %s: ", strconv.Quote(p.Name))
		if p.Type == "histogram" {
			fmt.Fprintf(&b, `{"count": %d, "sum": %s, "buckets": {`, p.Count, fmtFloat(p.Sum))
			for j, bk := range p.Buckets {
				if j > 0 {
					b.WriteString(", ")
				}
				le := "+Inf"
				if bk.UpperBound != inf {
					le = fmtFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s: %d", strconv.Quote(le), bk.CumulativeCount)
			}
			b.WriteString("}}")
		} else {
			b.WriteString(fmtFloat(p.Value))
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, histograms
// expanded into _bucket/_sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, p := range s {
		family, labels := splitSeries(p.Name)
		if family != lastFamily {
			if p.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", family, strings.ReplaceAll(p.Help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, p.Type)
			lastFamily = family
		}
		switch p.Type {
		case "histogram":
			for _, bk := range p.Buckets {
				le := "+Inf"
				if bk.UpperBound != inf {
					le = fmtFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", family, mergeLabel(labels, "le", le), bk.CumulativeCount)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", family, labels, fmtFloat(p.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", family, labels, p.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", family, labels, fmtFloat(p.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabel inserts key="value" into a rendered label set ("{a=\"1\"}"
// or "").
func mergeLabel(labels, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// Handler serves the registry over HTTP: the Prometheus text format by
// default, the JSON form with ?format=json (or an Accept header asking
// for application/json). Mounted at /metrics by the httpapi server and
// conwatch.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := r.Snapshot()
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
}

// PProfMux returns a mux serving the standard net/http/pprof endpoints
// under /debug/pprof/, for mounting behind an opt-in -pprof-addr flag
// without touching http.DefaultServeMux.
func PProfMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
