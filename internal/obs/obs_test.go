package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")

	c := sc.Counter("ops_total", "operations")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := sc.Gauge("lanes", "lane count")
	g.Set(8)
	g.Add(-3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}

	h := sc.Histogram("wait_seconds", "queue wait", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if math.Abs(h.Sum()-100.55) > 1e-9 {
		t.Fatalf("hist sum = %v, want 100.55", h.Sum())
	}
}

func TestRegistrationIsSharedAndKindSafe(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("x")
	a := sc.Counter("c_total", "")
	b := sc.Counter("c_total", "")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	// A kind collision must not panic and must not corrupt the first
	// registration; the loser gets a live unregistered metric.
	g := sc.Gauge("c_total", "")
	g.Set(42)
	a.Inc()
	if a.Value() != 1 {
		t.Fatalf("counter corrupted by kind collision: %v", a.Value())
	}
	if n := len(reg.Snapshot()); n != 1 {
		t.Fatalf("registry has %d series, want 1", n)
	}
}

func TestNilScopeIsUsable(t *testing.T) {
	var sc *Scope
	sc.Counter("a", "").Inc()
	sc.Gauge("b", "").Set(1)
	sc.Histogram("c", "", nil).Observe(1)
	sc.Sub("x").With("k", "v").Counter("d", "").Inc()
	if sc.Registry() != nil {
		t.Fatal("nil scope must have nil registry")
	}
	if (*Registry)(nil).Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestScopeNaming(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe").Sub("engine").With("lane", "3")
	sc.Counter("tests_started_total", "").Inc()
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d series", len(snap))
	}
	want := `conprobe_engine_tests_started_total{lane="3"}`
	if snap[0].Name != want {
		t.Fatalf("series name = %q, want %q", snap[0].Name, want)
	}
	if snap.Value(want) != 1 {
		t.Fatalf("value = %v, want 1", snap.Value(want))
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	// Register in two different orders; snapshots must be identical,
	// and a family's labeled series must stay contiguous even when
	// another family sorts between them lexicographically
	// ("foo_totalx" vs "foo_total{...}").
	build := func(names []string) string {
		reg := NewRegistry()
		sc := reg.Scope("")
		for _, n := range names {
			sc.Counter(n, "").Inc()
		}
		sc.With("lane", "1").Counter("foo_total", "").Inc()
		sc.With("lane", "0").Counter("foo_total", "").Inc()
		var buf bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"foo_totalx", "bar_total"})
	b := build([]string{"bar_total", "foo_totalx"})
	if a != b {
		t.Fatalf("snapshot order depends on registration order:\n%s\nvs\n%s", a, b)
	}
	// TYPE header must appear exactly once per family.
	if n := strings.Count(a, "# TYPE foo_total counter"); n != 1 {
		t.Fatalf("family foo_total has %d TYPE headers:\n%s", n, a)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")
	sc.Counter("ops_total", "operations issued").Add(7)
	h := sc.Histogram("wait_seconds", "queue wait", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP conprobe_ops_total operations issued",
		"# TYPE conprobe_ops_total counter",
		"conprobe_ops_total 7",
		"# TYPE conprobe_wait_seconds histogram",
		`conprobe_wait_seconds_bucket{le="0.1"} 1`,
		`conprobe_wait_seconds_bucket{le="1"} 2`,
		`conprobe_wait_seconds_bucket{le="+Inf"} 3`,
		"conprobe_wait_seconds_sum 3.55",
		"conprobe_wait_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")
	sc.Counter("ops_total", "").Add(7)
	sc.Gauge("lanes", "").Set(8)
	sc.Histogram("wait_seconds", "", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("JSON exposition does not parse: %v\n%s", err, buf.String())
	}
	if got["conprobe_ops_total"] != float64(7) {
		t.Fatalf("ops_total = %v", got["conprobe_ops_total"])
	}
	if got["conprobe_lanes"] != float64(8) {
		t.Fatalf("lanes = %v", got["conprobe_lanes"])
	}
	hist, ok := got["conprobe_wait_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Fatalf("histogram = %v", got["conprobe_wait_seconds"])
	}
	// The snapshot struct itself must also survive encoding/json
	// (EngineStats is embedded in library results), +Inf bucket included.
	if _, err := json.Marshal(reg.Snapshot()); err != nil {
		t.Fatalf("json.Marshal(Snapshot): %v", err)
	}
}

func TestHandlerServesBothForms(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("conprobe").Counter("ops_total", "").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func(url, accept string) (string, string) {
		req := httptest.NewRequest("GET", url, nil)
		req.Header.Set("Accept", accept)
		rec := httptest.NewRecorder()
		reg.Handler().ServeHTTP(rec, req)
		return rec.Body.String(), rec.Header().Get("Content-Type")
	}

	text, ct := get("/metrics", "")
	if !strings.Contains(text, "conprobe_ops_total 1") || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus form wrong (ct %q):\n%s", ct, text)
	}
	jsn, ct := get("/metrics?format=json", "")
	if !json.Valid([]byte(jsn)) || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json form wrong (ct %q):\n%s", ct, jsn)
	}
	jsn2, _ := get("/metrics", "application/json")
	if jsn2 != jsn {
		t.Fatal("Accept: application/json must match ?format=json")
	}
}

func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sc.Counter("ops_total", "")
			h := sc.Histogram("wait_seconds", "", nil)
			g := sc.Gauge("level", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if v := snap.Value("conprobe_ops_total"); v != 8000 {
		t.Fatalf("ops_total = %v, want 8000", v)
	}
	if p := snap.Get("conprobe_wait_seconds"); p == nil || p.Count != 8000 {
		t.Fatalf("histogram count wrong: %+v", p)
	}
	if v := snap.Value("conprobe_level"); v != 8000 {
		t.Fatalf("gauge = %v, want 8000", v)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"ops_total":  "ops_total",
		"ops-total":  "ops_total",
		"ops total€": "ops_total___",
		"":           "_",
		"9lives":     "_9lives",
		"a:b":        "a:b",
		"läne":       "l__ne",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsHotPathAllocs pins the zero-alloc contract: once handles
// are registered, Inc/Add/Set/Observe must not allocate.
func TestMetricsHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("conprobe")
	c := sc.Counter("ops_total", "")
	g := sc.Gauge("level", "")
	h := sc.Histogram("wait_seconds", "", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(0.123)
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
}
