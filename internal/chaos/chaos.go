// Package chaos turns a declarative timeline of infrastructure events —
// WAN partitions, data-center outages, clock steps, overload windows —
// into deterministic interventions on a simulated campaign world.
//
// The paper's measurements lived through exactly this weather: a
// transient Tokyo partition during the Facebook Group campaign, API
// throttling, month-long runs surviving agent restarts. A chaos
// schedule scripts that weather so anomaly rates can be observed
// responding to it: every event fires at a fixed offset on the virtual
// clock, so the same profile and seed replay the same chaos, and a
// campaign resumed mid-schedule rebuilds the same world state the
// uninterrupted run had.
//
// Events and their fields:
//
//	partition(a, b, at..until)  sever the a<->b link; until omitted
//	                            means "until an explicit heal"
//	heal(a, b, at)              restore the a<->b link
//	outage(site, at..until)     sever site from every other site
//	skew-clock(agent, at, ±d)   step one agent's clock by d, permanently
//	overload(site, at..until)   shed a fraction of requests routed to
//	                            site (compiled into faultinject windows)
//	kill(site, at[..until])     crash the node at site: sever it from
//	                            every peer; until omitted means "until
//	                            an explicit restart"
//	restart(site, at)           bring the node at site back: restore
//	                            all its links
//	diskfault(site, fault, at)  arm one storage fault at a disk site
//	                            ("wal", "term", "snapshot", "store",
//	                            "checkpoint"); fault is a diskfault kind
//	                            ("torn", "fsync-gate", "bit-flip",
//	                            "enospc", "dirsync-omit", "crash-rename")
//
// kill/restart are the sim-level half of the cluster crash story: on
// the virtual clock a killed node is one no peer can reach (replication
// stalls, its replica goes stale) and a restarted node rejoins and
// converges via the store's retry machinery. The process-level half —
// SIGKILL of a real consvc and recovery from its WAL — lives in the
// cmd/consvc supervisor tests and scripts/cluster_smoke.sh.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"conprobe/internal/diskfault"
	"conprobe/internal/faultinject"
	"conprobe/internal/obs"
	"conprobe/internal/simnet"
	"conprobe/internal/vtime"
)

// Kind names one chaos event type.
type Kind string

// The supported event kinds.
const (
	KindPartition Kind = "partition"
	KindHeal      Kind = "heal"
	KindSkew      Kind = "skew-clock"
	KindOutage    Kind = "outage"
	KindOverload  Kind = "overload"
	KindKill      Kind = "kill"
	KindRestart   Kind = "restart"
	KindDiskFault Kind = "diskfault"
)

// Event is one scheduled intervention. Offsets are relative to the
// campaign start (not the lane's world-build time, which differs on
// resume).
type Event struct {
	// Kind selects the intervention and which fields below apply.
	Kind Kind
	// At is when the event begins.
	At time.Duration
	// Until ends windowed events (partition, outage, overload, kill).
	// Zero on a partition (kill) means it lasts until an explicit heal
	// (restart), or forever.
	Until time.Duration
	// A and B are the partition/heal link endpoints.
	A, B simnet.Site
	// Site is the outage/overload data center.
	Site simnet.Site
	// Agent is the skewed agent's author label ("agent1", ...).
	Agent string
	// Delta is the (signed) clock step applied by skew-clock.
	Delta time.Duration
	// Rate is the overload shed probability in [0, 1].
	Rate float64
	// Fault is the diskfault kind armed by a diskfault event; Site names
	// the disk site it targets (a diskfault.Sites key: "wal", "term",
	// "snapshot", "store", "checkpoint").
	Fault string
}

// Schedule is an ordered chaos timeline.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule has no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Validate checks every event's fields and window.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative offset %v", i, e.Kind, e.At)
		}
		windowed := func() error {
			if e.Until != 0 && e.Until <= e.At {
				return fmt.Errorf("chaos: event %d (%s): window [%v, %v) is empty or inverted", i, e.Kind, e.At, e.Until)
			}
			return nil
		}
		switch e.Kind {
		case KindPartition:
			if e.A == "" || e.B == "" || e.A == e.B {
				return fmt.Errorf("chaos: event %d (partition): needs two distinct sites, got %q and %q", i, e.A, e.B)
			}
			if err := windowed(); err != nil {
				return err
			}
		case KindHeal:
			if e.A == "" || e.B == "" || e.A == e.B {
				return fmt.Errorf("chaos: event %d (heal): needs two distinct sites, got %q and %q", i, e.A, e.B)
			}
			if e.Until != 0 {
				return fmt.Errorf("chaos: event %d (heal): heal is instantaneous, drop until", i)
			}
		case KindOutage:
			if e.Site == "" {
				return fmt.Errorf("chaos: event %d (outage): needs a site", i)
			}
			if e.Until == 0 {
				return fmt.Errorf("chaos: event %d (outage): needs an end (until)", i)
			}
			if err := windowed(); err != nil {
				return err
			}
		case KindSkew:
			if e.Agent == "" {
				return fmt.Errorf("chaos: event %d (skew-clock): needs an agent label", i)
			}
			if e.Delta == 0 {
				return fmt.Errorf("chaos: event %d (skew-clock): zero delta is a no-op", i)
			}
		case KindKill:
			if e.Site == "" {
				return fmt.Errorf("chaos: event %d (kill): needs a site", i)
			}
			if err := windowed(); err != nil {
				return err
			}
		case KindRestart:
			if e.Site == "" {
				return fmt.Errorf("chaos: event %d (restart): needs a site", i)
			}
			if e.Until != 0 {
				return fmt.Errorf("chaos: event %d (restart): restart is instantaneous, drop until", i)
			}
		case KindDiskFault:
			if _, ok := diskfault.Sites[string(e.Site)]; !ok {
				return fmt.Errorf("chaos: event %d (diskfault): unknown disk site %q (want one of %v)", i, e.Site, diskfault.SiteNames())
			}
			if !diskfault.Kind(e.Fault).Valid() {
				return fmt.Errorf("chaos: event %d (diskfault): unknown fault kind %q (want one of %v)", i, e.Fault, diskfault.Kinds())
			}
			if e.Until != 0 {
				return fmt.Errorf("chaos: event %d (diskfault): arming is instantaneous, drop until", i)
			}
		case KindOverload:
			if e.Site == "" {
				return fmt.Errorf("chaos: event %d (overload): needs a site", i)
			}
			if e.Until == 0 {
				return fmt.Errorf("chaos: event %d (overload): needs an end (until)", i)
			}
			if e.Rate <= 0 || e.Rate > 1 {
				return fmt.Errorf("chaos: event %d (overload): rate %v outside (0, 1]", i, e.Rate)
			}
			if err := windowed(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("chaos: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// linkLabel renders a canonical a<b pair label.
func linkLabel(a, b simnet.Site) string {
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("partition(%s,%s)", a, b)
}

// partitionEnd resolves when the partition starting at event i ends: its
// own Until if set, else the earliest later heal of the same link, else
// forever (-1).
func (s *Schedule) partitionEnd(i int) time.Duration {
	e := s.Events[i]
	if e.Until != 0 {
		return e.Until
	}
	end := time.Duration(-1)
	for _, h := range s.Events {
		if h.Kind != KindHeal || h.At < e.At {
			continue
		}
		if (h.A == e.A && h.B == e.B) || (h.A == e.B && h.B == e.A) {
			if end < 0 || h.At < end {
				end = h.At
			}
		}
	}
	return end
}

// killEnd resolves when the kill starting at event i ends: its own
// Until if set, else the earliest later restart of the same site, else
// forever (-1).
func (s *Schedule) killEnd(i int) time.Duration {
	e := s.Events[i]
	if e.Until != 0 {
		return e.Until
	}
	end := time.Duration(-1)
	for _, r := range s.Events {
		if r.Kind != KindRestart || r.At < e.At || r.Site != e.Site {
			continue
		}
		if end < 0 || r.At < end {
			end = r.At
		}
	}
	return end
}

// ActiveAt returns sorted labels of the chaos windows in force at the
// given campaign offset — a pure function of the schedule, so lived and
// resumed worlds annotate traces identically. Instantaneous events
// (heal, skew-clock) produce no window.
func (s *Schedule) ActiveAt(offset time.Duration) []string {
	if s.Empty() {
		return nil
	}
	var out []string
	for i, e := range s.Events {
		switch e.Kind {
		case KindPartition:
			end := s.partitionEnd(i)
			if offset >= e.At && (end < 0 || offset < end) {
				out = append(out, linkLabel(e.A, e.B))
			}
		case KindOutage:
			if offset >= e.At && offset < e.Until {
				out = append(out, fmt.Sprintf("outage(%s)", e.Site))
			}
		case KindOverload:
			if offset >= e.At && offset < e.Until {
				out = append(out, fmt.Sprintf("overload(%s)", e.Site))
			}
		case KindKill:
			end := s.killEnd(i)
			if offset >= e.At && (end < 0 || offset < end) {
				out = append(out, fmt.Sprintf("kill(%s)", e.Site))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Overloads compiles the schedule's overload events into faultinject
// shed windows scoped to the client sites the routing table sends to
// the overloaded data center.
func (s *Schedule) Overloads(routing map[simnet.Site]simnet.Site) []faultinject.Overload {
	if s.Empty() {
		return nil
	}
	var out []faultinject.Overload
	for _, e := range s.Events {
		if e.Kind != KindOverload {
			continue
		}
		var sites []simnet.Site
		for from, dc := range routing {
			if dc == e.Site {
				sites = append(sites, from)
			}
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		out = append(out, faultinject.Overload{
			Start: e.At, End: e.Until, Sites: sites, Rate: e.Rate,
		})
	}
	return out
}

// AdjustableClock is the per-agent clock surface skew-clock events
// drive (clocksync.SkewedClock implements it).
type AdjustableClock interface {
	Skew() time.Duration
	SetSkew(time.Duration)
}

// World is the mutable campaign state a Driver intervenes on.
type World struct {
	// Net is the lane's network; partitions and outages act on it.
	Net *simnet.Network
	// Clocks maps agent author labels to their adjustable clocks.
	Clocks map[string]AdjustableClock
	// Disks maps disk site names (diskfault.Sites keys) to the fault
	// injectors diskfault events arm. Absent sites make a schedule with
	// diskfault events a Drive-time error — mirroring skew-clock's
	// unknown-agent error — so a misdirected fault can never silently
	// target nothing.
	Disks map[string]*diskfault.Injector
	// DiskPaths overrides, per site, the path substring an armed fault
	// matches; sites not listed fall back to diskfault.Sites. Needed
	// when the real file's name is operator-chosen — e.g. the
	// checkpoint journal lives wherever -checkpoint points, not at a
	// file named "checkpoint".
	DiskPaths map[string]string
}

// action is one compiled intervention at a fixed offset.
type action struct {
	at    time.Duration
	kind  Kind
	apply func()
}

// Drive installs the schedule on a freshly built world: interventions
// whose offset has already passed (a world rebuilt mid-campaign on
// resume) are applied synchronously, in offset order, before Drive
// returns; future ones are scheduled as virtual-clock timers. start is
// the campaign epoch the event offsets are relative to; clock.Now() may
// be later on resume. Call Drive before spawning the runner actor so
// same-instant timers fire in a deterministic order relative to it.
// Overload events are not driven here — they are compiled into
// faultinject windows via Overloads.
func (s *Schedule) Drive(clock vtime.Clock, start time.Time, w World, sc *obs.Scope) error {
	if s.Empty() {
		return nil
	}
	applied := func(k Kind) *obs.Counter {
		return sc.With("kind", string(k)).Counter("events_applied_total", "Chaos events applied, by kind.")
	}
	counters := map[Kind]*obs.Counter{
		KindPartition: applied(KindPartition),
		KindHeal:      applied(KindHeal),
		KindSkew:      applied(KindSkew),
		KindOutage:    applied(KindOutage),
		KindKill:      applied(KindKill),
		KindRestart:   applied(KindRestart),
		KindDiskFault: applied(KindDiskFault),
	}
	var acts []action
	add := func(at time.Duration, kind Kind, f func()) {
		acts = append(acts, action{at: at, kind: kind, apply: func() {
			f()
			counters[kind].Inc()
		}})
	}
	others := func(site simnet.Site) []simnet.Site {
		var out []simnet.Site
		for _, o := range w.Net.Sites() {
			if o != site {
				out = append(out, o)
			}
		}
		return out
	}
	for i, e := range s.Events {
		switch e.Kind {
		case KindPartition:
			a, b := e.A, e.B
			add(e.At, KindPartition, func() { w.Net.Partition(a, b) })
			if end := s.partitionEnd(i); end >= 0 && e.Until != 0 {
				// Explicit window: the end is ours to heal. Open-ended
				// partitions are healed by their own heal events.
				add(end, KindHeal, func() { w.Net.Heal(a, b) })
			}
		case KindHeal:
			a, b := e.A, e.B
			add(e.At, KindHeal, func() { w.Net.Heal(a, b) })
		case KindOutage:
			site := e.Site
			add(e.At, KindOutage, func() {
				for _, o := range others(site) {
					w.Net.Partition(site, o)
				}
			})
			add(e.Until, KindHeal, func() {
				for _, o := range others(site) {
					w.Net.Heal(site, o)
				}
			})
		case KindSkew:
			c, ok := w.Clocks[e.Agent]
			if !ok {
				return fmt.Errorf("chaos: skew-clock names unknown agent %q", e.Agent)
			}
			delta := e.Delta
			add(e.At, KindSkew, func() { c.SetSkew(c.Skew() + delta) })
		case KindKill:
			site := e.Site
			add(e.At, KindKill, func() {
				for _, o := range others(site) {
					w.Net.Partition(site, o)
				}
			})
			if e.Until != 0 {
				// Explicit window: the end is ours. Open-ended kills are
				// healed by their own restart events.
				add(e.Until, KindRestart, func() {
					for _, o := range others(site) {
						w.Net.Heal(site, o)
					}
				})
			}
		case KindRestart:
			site := e.Site
			add(e.At, KindRestart, func() {
				for _, o := range others(site) {
					w.Net.Heal(site, o)
				}
			})
		case KindDiskFault:
			inj, ok := w.Disks[string(e.Site)]
			if !ok {
				return fmt.Errorf("chaos: diskfault names unknown disk site %q", e.Site)
			}
			// The fault's Seed (which byte a torn write cuts at, which bit
			// a flip targets) derives from the event's offset, so the same
			// schedule replays the identical fault.
			path := diskfault.Sites[string(e.Site)]
			if p, ok := w.DiskPaths[string(e.Site)]; ok {
				path = p
			}
			f := diskfault.Fault{
				Kind:   diskfault.Kind(e.Fault),
				Path:   path,
				Sticky: diskfault.Kind(e.Fault) == diskfault.KindENOSPC,
				Seed:   uint64(e.At),
			}
			add(e.At, KindDiskFault, func() {
				// Arm dedups an identical unspent fault, so a lane world
				// rebuilt mid-campaign (resume) does not double-arm.
				_ = inj.Arm(f)
			})
		case KindOverload:
			// Compiled into faultinject windows; nothing to drive.
		}
	}
	// Apply in offset order (stable for ties: schedule order) so a
	// resumed world replays the exact intervention sequence the lived
	// world's timer queue produced.
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })
	elapsed := clock.Now().Sub(start)
	for _, a := range acts {
		if a.at <= elapsed {
			a.apply()
			continue
		}
		a := a
		clock.AfterFunc(a.at-elapsed, a.apply)
	}
	return nil
}
