package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"conprobe/internal/diskfault"
	"conprobe/internal/simnet"
	"conprobe/internal/vtime"
)

func mustValidate(t *testing.T, s *Schedule) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown kind", Event{Kind: "meteor", At: time.Second}, "unknown kind"},
		{"negative offset", Event{Kind: KindHeal, At: -time.Second, A: "x", B: "y"}, "negative offset"},
		{"partition same site", Event{Kind: KindPartition, A: "x", B: "x"}, "distinct sites"},
		{"inverted window", Event{Kind: KindPartition, A: "x", B: "y", At: 2 * time.Second, Until: time.Second}, "empty or inverted"},
		{"outage no end", Event{Kind: KindOutage, Site: "x"}, "needs an end"},
		{"skew no delta", Event{Kind: KindSkew, Agent: "agent1"}, "zero delta"},
		{"overload bad rate", Event{Kind: KindOverload, Site: "x", Until: time.Second, Rate: 1.5}, "rate"},
		{"kill no site", Event{Kind: KindKill, At: time.Second}, "needs a site"},
		{"kill inverted window", Event{Kind: KindKill, Site: "x", At: 2 * time.Second, Until: time.Second}, "empty or inverted"},
		{"restart no site", Event{Kind: KindRestart, At: time.Second}, "needs a site"},
		{"restart with window", Event{Kind: KindRestart, Site: "x", At: time.Second, Until: 2 * time.Second}, "instantaneous"},
	}
	for _, c := range cases {
		s := &Schedule{Events: []Event{c.ev}}
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestActiveAtWindows(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindPartition, A: simnet.DCEast, B: simnet.DCAsia, At: 10 * time.Minute, Until: 20 * time.Minute},
		{Kind: KindPartition, A: simnet.DCWest, B: simnet.DCEurope, At: 5 * time.Minute}, // open-ended
		{Kind: KindHeal, A: simnet.DCEurope, B: simnet.DCWest, At: 15 * time.Minute},     // reversed endpoints still match
		{Kind: KindOutage, Site: simnet.DCAsia, At: 30 * time.Minute, Until: 35 * time.Minute},
		{Kind: KindOverload, Site: simnet.DCEast, At: 12 * time.Minute, Until: 13 * time.Minute, Rate: 0.5},
		{Kind: KindSkew, Agent: "agent1", At: 11 * time.Minute, Delta: time.Second},
	}}
	mustValidate(t, s)
	cases := []struct {
		at   time.Duration
		want []string
	}{
		{0, nil},
		{6 * time.Minute, []string{"partition(dc-europe,dc-west)"}},
		{12 * time.Minute, []string{"overload(dc-east)", "partition(dc-asia,dc-east)", "partition(dc-europe,dc-west)"}},
		{16 * time.Minute, []string{"partition(dc-asia,dc-east)"}}, // heal ended the open partition
		{25 * time.Minute, nil},
		{32 * time.Minute, []string{"outage(dc-asia)"}},
	}
	for _, c := range cases {
		got := s.ActiveAt(c.at)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ActiveAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestOverloadsCompileToRoutedSites(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindOverload, Site: simnet.DCEast, At: time.Minute, Until: 2 * time.Minute, Rate: 0.8},
	}}
	mustValidate(t, s)
	routing := map[simnet.Site]simnet.Site{
		simnet.Oregon:  simnet.DCEast,
		simnet.Ireland: simnet.DCEast,
		simnet.Tokyo:   simnet.DCAsia,
	}
	got := s.Overloads(routing)
	if len(got) != 1 {
		t.Fatalf("got %d overloads", len(got))
	}
	o := got[0]
	if o.Start != time.Minute || o.End != 2*time.Minute || o.Rate != 0.8 {
		t.Fatalf("window mangled: %+v", o)
	}
	want := []simnet.Site{simnet.Ireland, simnet.Oregon}
	if !reflect.DeepEqual(o.Sites, want) {
		t.Fatalf("sites = %v, want %v", o.Sites, want)
	}
}

type fakeClock struct{ skew time.Duration }

func (f *fakeClock) Skew() time.Duration     { return f.skew }
func (f *fakeClock) SetSkew(d time.Duration) { f.skew = d }

// driveTo builds a network, drives the schedule from a world whose clock
// has already advanced to elapsed, and settles all due timers.
func driveTo(t *testing.T, s *Schedule, elapsed time.Duration, clock *fakeClock) *simnet.Network {
	t.Helper()
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sim := vtime.NewSim(start.Add(elapsed))
	net := simnet.DefaultTopology(1)
	w := World{Net: net, Clocks: map[string]AdjustableClock{"agent1": clock}}
	if err := s.Drive(sim, start, w, nil); err != nil {
		t.Fatal(err)
	}
	sim.Wait()
	return net
}

// TestDriveCatchUpMatchesLivedWorld checks the resume property: a world
// built mid-schedule (catch-up path) ends in the same network and clock
// state as a world that lived through the schedule on timers.
func TestDriveCatchUpMatchesLivedWorld(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindPartition, A: simnet.DCEast, B: simnet.DCAsia, At: time.Minute, Until: 2 * time.Minute},
		{Kind: KindPartition, A: simnet.DCWest, B: simnet.DCEurope, At: 90 * time.Second},
		{Kind: KindOutage, Site: simnet.DCAsia, At: 10 * time.Minute, Until: 11 * time.Minute},
		{Kind: KindSkew, Agent: "agent1", At: 30 * time.Second, Delta: 500 * time.Millisecond},
		{Kind: KindSkew, Agent: "agent1", At: 3 * time.Minute, Delta: -200 * time.Millisecond},
	}}
	mustValidate(t, s)

	type probe struct{ a, b simnet.Site }
	links := []probe{
		{simnet.DCEast, simnet.DCAsia},
		{simnet.DCWest, simnet.DCEurope},
		{simnet.DCAsia, simnet.Oregon},
		{simnet.DCAsia, simnet.DCWest},
	}
	for _, elapsed := range []time.Duration{0, 95 * time.Second, 150 * time.Second, 4 * time.Minute, 630 * time.Second, 20 * time.Minute} {
		// Lived world: clock starts at campaign start, timers fire as the
		// sim drains up to (at least) elapsed.
		livedClock := &fakeClock{}
		start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		sim := vtime.NewSim(start)
		livedNet := simnet.DefaultTopology(1)
		w := World{Net: livedNet, Clocks: map[string]AdjustableClock{"agent1": livedClock}}
		if err := s.Drive(sim, start, w, nil); err != nil {
			t.Fatal(err)
		}
		el := elapsed
		sim.Go(func() { sim.Sleep(el) })
		sim.Wait()

		// Resumed world: built directly at elapsed; past events replay in
		// the catch-up pass.
		resumedClock := &fakeClock{}
		resumedNet := driveTo(t, s, elapsed, resumedClock)

		for _, l := range links {
			if lv, rs := livedNet.Reachable(l.a, l.b), resumedNet.Reachable(l.a, l.b); lv != rs {
				t.Errorf("elapsed %v: link %s-%s lived=%v resumed=%v", elapsed, l.a, l.b, lv, rs)
			}
		}
		if livedClock.Skew() != resumedClock.Skew() {
			t.Errorf("elapsed %v: skew lived=%v resumed=%v", elapsed, livedClock.Skew(), resumedClock.Skew())
		}
	}
}

// TestKillActiveUntilRestart checks the open-ended kill window resolves
// against its matching restart, and only restarts of the same site.
func TestKillActiveUntilRestart(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindKill, Site: simnet.DCAsia, At: time.Minute},        // open-ended
		{Kind: KindRestart, Site: simnet.DCEast, At: 2 * time.Minute}, // different site: no effect
		{Kind: KindRestart, Site: simnet.DCAsia, At: 5 * time.Minute},
		{Kind: KindKill, Site: simnet.DCWest, At: 10 * time.Minute, Until: 11 * time.Minute}, // windowed
	}}
	mustValidate(t, s)
	cases := []struct {
		at   time.Duration
		want []string
	}{
		{30 * time.Second, nil},
		{90 * time.Second, []string{"kill(dc-asia)"}},
		{3 * time.Minute, []string{"kill(dc-asia)"}}, // dc-east restart doesn't end it
		{6 * time.Minute, nil},
		{10*time.Minute + 30*time.Second, []string{"kill(dc-west)"}},
		{12 * time.Minute, nil},
	}
	for _, c := range cases {
		if got := s.ActiveAt(c.at); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ActiveAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

// TestDriveKillSeversAndRestartRestores drives a kill/restart pair on
// the virtual clock and checks the killed site is unreachable from every
// peer while down, and fully restored after restart — in both the lived
// and the resumed (catch-up) world.
func TestDriveKillSeversAndRestartRestores(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindKill, Site: simnet.DCAsia, At: time.Minute},
		{Kind: KindRestart, Site: simnet.DCAsia, At: 3 * time.Minute},
		{Kind: KindKill, Site: simnet.DCEast, At: 5 * time.Minute, Until: 6 * time.Minute},
	}}
	mustValidate(t, s)
	check := func(label string, net *simnet.Network, asiaUp, eastUp bool) {
		t.Helper()
		for _, o := range net.Sites() {
			if o != simnet.DCAsia {
				want := asiaUp
				if o == simnet.DCEast {
					want = asiaUp && eastUp // the link needs both ends alive
				}
				if got := net.Reachable(simnet.DCAsia, o); got != want {
					t.Errorf("%s: dc-asia<->%s reachable=%v, want %v", label, o, got, want)
				}
			}
			if o != simnet.DCEast && o != simnet.DCAsia {
				if got := net.Reachable(simnet.DCEast, o); got != eastUp {
					t.Errorf("%s: dc-east<->%s reachable=%v, want %v", label, o, got, eastUp)
				}
			}
		}
	}
	cases := []struct {
		elapsed        time.Duration
		asiaUp, eastUp bool
	}{
		{30 * time.Second, true, true},
		{2 * time.Minute, false, true},   // asia killed
		{4 * time.Minute, true, true},    // asia restarted
		{330 * time.Second, true, false}, // east inside its window
		{7 * time.Minute, true, true},    // window closed itself
	}
	for _, c := range cases {
		// Resumed world: catch-up pass applies past events synchronously.
		net := driveTo(t, s, c.elapsed, &fakeClock{})
		check(fmt.Sprintf("resumed@%v", c.elapsed), net, c.asiaUp, c.eastUp)

		// Lived world: timers fire as the sim drains up to elapsed.
		start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		sim := vtime.NewSim(start)
		lived := simnet.DefaultTopology(1)
		if err := s.Drive(sim, start, World{Net: lived}, nil); err != nil {
			t.Fatal(err)
		}
		el := c.elapsed
		sim.Go(func() { sim.Sleep(el) })
		sim.Wait()
		check(fmt.Sprintf("lived@%v", c.elapsed), lived, c.asiaUp, c.eastUp)
	}
}

// TestDriveRejectsUnknownAgent checks skew events name real agents.
func TestDriveRejectsUnknownAgent(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: KindSkew, Agent: "ghost", At: time.Second, Delta: time.Second}}}
	mustValidate(t, s)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sim := vtime.NewSim(start)
	err := s.Drive(sim, start, World{Net: simnet.DefaultTopology(1)}, nil)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown agent accepted: %v", err)
	}
}

// TestDiskFaultArmsInjector checks a diskfault event arms the named
// site's injector at its offset, that a resumed world's catch-up pass
// does not double-arm (Arm dedups identical unspent faults), and that
// an unknown disk site is a Drive-time error like skew's unknown agent.
func TestDiskFaultArmsInjector(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindDiskFault, Site: "term", Fault: "torn", At: time.Minute},
	}}
	mustValidate(t, s)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	inj := diskfault.New(nil)
	sim := vtime.NewSim(start)
	w := World{Net: simnet.DefaultTopology(1), Disks: map[string]*diskfault.Injector{"term": inj}}
	if err := s.Drive(sim, start, w, nil); err != nil {
		t.Fatal(err)
	}
	sim.Go(func() { sim.Sleep(2 * time.Minute) })
	sim.Wait()
	if n := inj.Armed(); n != 1 {
		t.Fatalf("armed faults = %d, want 1", n)
	}

	// Resume: a second Drive over the same injector (the catch-up pass
	// replays the past event) must not arm a duplicate.
	sim2 := vtime.NewSim(start.Add(2 * time.Minute))
	if err := s.Drive(sim2, start, w, nil); err != nil {
		t.Fatal(err)
	}
	sim2.Wait()
	if n := inj.Armed(); n != 1 {
		t.Fatalf("after resume, armed faults = %d, want 1 (double-armed)", n)
	}

	// An unknown disk site fails Drive.
	ghost := &Schedule{Events: []Event{{Kind: KindDiskFault, Site: "wal", Fault: "torn", At: time.Second}}}
	mustValidate(t, ghost)
	sim3 := vtime.NewSim(start)
	err := ghost.Drive(sim3, start, World{Net: simnet.DefaultTopology(1), Disks: w.Disks}, nil)
	if err == nil || !strings.Contains(err.Error(), "wal") {
		t.Fatalf("unknown disk site accepted: %v", err)
	}
}

// TestDiskFaultPathOverride checks World.DiskPaths redirects an armed
// fault at the site's real file name: a checkpoint journal lives
// wherever the operator pointed -checkpoint, which need not contain
// the site table's generic "checkpoint" substring.
func TestDiskFaultPathOverride(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindDiskFault, Site: "checkpoint", Fault: "enospc", At: time.Minute},
	}}
	mustValidate(t, s)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	inj := diskfault.New(nil)
	sim := vtime.NewSim(start)
	w := World{
		Net:       simnet.DefaultTopology(1),
		Disks:     map[string]*diskfault.Injector{"checkpoint": inj},
		DiskPaths: map[string]string{"checkpoint": "journal.ckpt"},
	}
	if err := s.Drive(sim, start, w, nil); err != nil {
		t.Fatal(err)
	}
	sim.Go(func() { sim.Sleep(2 * time.Minute) })
	sim.Wait()

	dir := t.TempDir()
	f, err := inj.FS().OpenFile(filepath.Join(dir, "journal.ckpt"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write to the overridden path succeeded; fault still targets the site table's substring")
	}
}

// TestValidateDiskFaultEvents checks diskfault field validation.
func TestValidateDiskFaultEvents(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown site", Event{Kind: KindDiskFault, Site: "floppy", Fault: "torn"}, "unknown disk site"},
		{"unknown fault", Event{Kind: KindDiskFault, Site: "wal", Fault: "gremlin"}, "unknown fault kind"},
		{"with window", Event{Kind: KindDiskFault, Site: "wal", Fault: "torn", At: time.Second, Until: 2 * time.Second}, "instantaneous"},
	}
	for _, c := range cases {
		s := &Schedule{Events: []Event{c.ev}}
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
