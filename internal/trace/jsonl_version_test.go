package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONLWriterStampsSchemaVersion checks that every emitted line
// carries the current schema version.
func TestJSONLWriterStampsSchemaVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(&TestTrace{TestID: 7, Kind: Test1, Agents: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var line struct {
		Version int `json:"v"`
		TestID  int `json:"test_id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line.Version != SchemaVersion {
		t.Fatalf("line version = %d, want %d", line.Version, SchemaVersion)
	}
	if line.TestID != 7 {
		t.Fatalf("test_id = %d, want 7", line.TestID)
	}
}

// TestJSONLReaderAcceptsLegacyLines checks that unversioned (pre-schema)
// lines still decode.
func TestJSONLReaderAcceptsLegacyLines(t *testing.T) {
	legacy := `{"test_id":3,"kind":1,"service":"gplus","agents":3}` + "\n"
	r := NewReader(strings.NewReader(legacy))
	tr, err := r.Read()
	if err != nil {
		t.Fatalf("legacy line rejected: %v", err)
	}
	if tr.TestID != 3 || tr.Service != "gplus" {
		t.Fatalf("legacy line decoded to %+v", tr)
	}
}

// TestJSONLReaderAcceptsMixedVersions checks a stream mixing legacy and
// versioned lines.
func TestJSONLReaderAcceptsMixedVersions(t *testing.T) {
	input := `{"test_id":1,"kind":1,"agents":3}` + "\n" +
		`{"v":1,"test_id":2,"kind":2,"agents":3}` + "\n"
	traces, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || traces[0].TestID != 1 || traces[1].TestID != 2 {
		t.Fatalf("mixed stream decoded to %d traces", len(traces))
	}
}

// TestJSONLReaderRejectsFutureVersion checks the forward-compatibility
// guard: a line from a newer writer must fail with a clear error, not be
// silently misread.
func TestJSONLReaderRejectsFutureVersion(t *testing.T) {
	future := `{"v":99,"test_id":1,"kind":1,"agents":3}` + "\n"
	_, err := NewReader(strings.NewReader(future)).Read()
	if err == nil {
		t.Fatal("future-version line accepted")
	}
	if !strings.Contains(err.Error(), "version 99") || !strings.Contains(err.Error(), "supports up to") {
		t.Fatalf("unhelpful future-version error: %v", err)
	}
}

// TestJSONLRoundTripPreservesVersionlessStruct checks that versioning is
// an envelope concern: the decoded TestTrace is identical whether the
// line was versioned or not.
func TestJSONLRoundTripPreservesVersionlessStruct(t *testing.T) {
	orig := &TestTrace{TestID: 11, Kind: Test2, Service: "blogger", Agents: 3,
		Writes: []Write{{ID: "t11-m1", Agent: 1, Seq: 1}}}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(orig); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.TestID != orig.TestID || got.Kind != orig.Kind || len(got.Writes) != 1 || got.Writes[0].ID != "t11-m1" {
		t.Fatalf("round trip mangled trace: %+v", got)
	}
}
