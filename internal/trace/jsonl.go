package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the JSONL trace schema version emitted by Writer.
//
// Version history:
//
//	0 (legacy)  lines without a "v" field, written before versioning
//	            existed; structurally identical to version 1.
//	1           explicit "v" field on every line.
//	2           adds "chaos_active": the labels of the chaos-schedule
//	            windows (partitions, outages, overloads) in force when
//	            the test started. Absent on undisturbed tests, so v1
//	            lines parse identically.
//
// Readers accept every version up to SchemaVersion and reject lines from
// the future, so a campaign archived today stays readable while a trace
// produced by a newer writer fails loudly instead of being silently
// misinterpreted.
const SchemaVersion = 2

// versionedLine is the on-disk envelope: the trace's own fields plus the
// schema version. Embedding keeps the wire format flat, so a legacy
// reader sees a normal trace line with one extra (ignored) field.
type versionedLine struct {
	Version int `json:"v,omitempty"`
	*TestTrace
}

// Writer streams TestTraces to an io.Writer as JSON Lines, one trace per
// line. Every line carries the current SchemaVersion. It buffers
// internally; call Flush (or Close) when done.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one trace as a JSON line stamped with SchemaVersion.
func (w *Writer) Write(t *TestTrace) error {
	if err := w.enc.Encode(versionedLine{Version: SchemaVersion, TestTrace: t}); err != nil {
		return fmt.Errorf("encode trace %d: %w", t.TestID, err)
	}
	return nil
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams TestTraces from JSON Lines input. It accepts both
// legacy (unversioned) lines and lines versioned up to SchemaVersion;
// lines declaring a future version are rejected with a clear error.
//
// The reader is strictly line-oriented so errors carry a position: a
// malformed line is reported as "trace line N", and a final fragment
// with no trailing newline that fails to parse is reported as a
// truncated record — the signature of a crashed writer — rather than a
// bare unmarshal error.
type Reader struct {
	br   *bufio.Reader
	line int
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Read returns the next trace, or io.EOF when input is exhausted.
func (r *Reader) Read() (*TestTrace, error) {
	for {
		raw, err := r.br.ReadBytes('\n')
		complete := err == nil
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("trace line %d: %w", r.line+1, err)
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			if !complete {
				return nil, io.EOF
			}
			// Skip blank lines without burning a trace slot; they still
			// count toward positions so errors match editor line numbers.
			r.line++
			continue
		}
		r.line++
		var t TestTrace
		line := versionedLine{TestTrace: &t}
		if err := json.Unmarshal(raw, &line); err != nil {
			if !complete {
				return nil, fmt.Errorf(
					"trace line %d: truncated record (no trailing newline; the writer likely crashed mid-append): %w",
					r.line, err)
			}
			return nil, fmt.Errorf("trace line %d: %w", r.line, err)
		}
		if line.Version > SchemaVersion {
			return nil, fmt.Errorf(
				"trace line %d has schema version %d; this reader supports up to version %d — upgrade to read it",
				r.line, line.Version, SchemaVersion)
		}
		return &t, nil
	}
}

// ReadAll consumes every remaining trace.
func (r *Reader) ReadAll() ([]*TestTrace, error) {
	var out []*TestTrace
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
