package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Writer streams TestTraces to an io.Writer as JSON Lines, one trace per
// line. It buffers internally; call Flush (or Close) when done.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one trace as a JSON line.
func (w *Writer) Write(t *TestTrace) error {
	if err := w.enc.Encode(t); err != nil {
		return fmt.Errorf("encode trace %d: %w", t.TestID, err)
	}
	return nil
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams TestTraces from JSON Lines input.
type Reader struct {
	dec  *json.Decoder
	line int
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Read returns the next trace, or io.EOF when input is exhausted.
func (r *Reader) Read() (*TestTrace, error) {
	var t TestTrace
	if err := r.dec.Decode(&t); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("decode trace near entry %d: %w", r.line, err)
	}
	r.line++
	return &t, nil
}

// ReadAll consumes every remaining trace.
func (r *Reader) ReadAll() ([]*TestTrace, error) {
	var out []*TestTrace
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
