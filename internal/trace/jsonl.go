package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the JSONL trace schema version emitted by Writer.
//
// Version history:
//
//	0 (legacy)  lines without a "v" field, written before versioning
//	            existed; structurally identical to version 1.
//	1           explicit "v" field on every line.
//
// Readers accept every version up to SchemaVersion and reject lines from
// the future, so a campaign archived today stays readable while a trace
// produced by a newer writer fails loudly instead of being silently
// misinterpreted.
const SchemaVersion = 1

// versionedLine is the on-disk envelope: the trace's own fields plus the
// schema version. Embedding keeps the wire format flat, so a legacy
// reader sees a normal trace line with one extra (ignored) field.
type versionedLine struct {
	Version int `json:"v,omitempty"`
	*TestTrace
}

// Writer streams TestTraces to an io.Writer as JSON Lines, one trace per
// line. Every line carries the current SchemaVersion. It buffers
// internally; call Flush (or Close) when done.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one trace as a JSON line stamped with SchemaVersion.
func (w *Writer) Write(t *TestTrace) error {
	if err := w.enc.Encode(versionedLine{Version: SchemaVersion, TestTrace: t}); err != nil {
		return fmt.Errorf("encode trace %d: %w", t.TestID, err)
	}
	return nil
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams TestTraces from JSON Lines input. It accepts both
// legacy (unversioned) lines and lines versioned up to SchemaVersion;
// lines declaring a future version are rejected with a clear error.
type Reader struct {
	dec  *json.Decoder
	line int
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Read returns the next trace, or io.EOF when input is exhausted.
func (r *Reader) Read() (*TestTrace, error) {
	var t TestTrace
	line := versionedLine{TestTrace: &t}
	if err := r.dec.Decode(&line); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("decode trace near entry %d: %w", r.line, err)
	}
	if line.Version > SchemaVersion {
		return nil, fmt.Errorf(
			"trace near entry %d has schema version %d; this reader supports up to version %d — upgrade to read it",
			r.line, line.Version, SchemaVersion)
	}
	r.line++
	return &t, nil
}

// ReadAll consumes every remaining trace.
func (r *Reader) ReadAll() ([]*TestTrace, error) {
	var out []*TestTrace
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
