package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }

func sampleTrace() *TestTrace {
	return &TestTrace{
		TestID:  7,
		Kind:    Test1,
		Service: "googleplus",
		Started: t0,
		Agents:  3,
		Writes: []Write{
			{ID: "m1", Agent: 1, Seq: 1, Invoked: at(0), Returned: at(50)},
			{ID: "m2", Agent: 1, Seq: 2, Invoked: at(60), Returned: at(110)},
			{ID: "m3", Agent: 2, Seq: 1, Invoked: at(300), Returned: at(350), Trigger: "m2"},
		},
		Reads: []Read{
			{Agent: 1, Invoked: at(120), Returned: at(160), Observed: []WriteID{"m1", "m2"}},
			{Agent: 2, Invoked: at(400), Returned: at(440), Observed: []WriteID{"m1", "m2", "m3"}},
			{Agent: 1, Invoked: at(20), Returned: at(60), Observed: []WriteID{"m1"}},
		},
		Deltas: map[AgentID]time.Duration{
			1: 5 * time.Millisecond,
			2: -12 * time.Millisecond,
		},
		Uncertainty: map[AgentID]time.Duration{1: 68 * time.Millisecond},
	}
}

func TestReadContainsAndPosition(t *testing.T) {
	r := Read{Observed: []WriteID{"a", "b", "c"}}
	if !r.Contains("b") || r.Contains("z") {
		t.Fatal("Contains wrong")
	}
	if r.Position("c") != 2 || r.Position("z") != -1 {
		t.Fatal("Position wrong")
	}
}

func TestCorrectedAppliesDelta(t *testing.T) {
	tr := sampleTrace()
	got := tr.Corrected(1, at(100))
	if want := at(105); !got.Equal(want) {
		t.Fatalf("Corrected agent1 = %v, want %v", got, want)
	}
	got = tr.Corrected(2, at(100))
	if want := at(88); !got.Equal(want) {
		t.Fatalf("Corrected agent2 = %v, want %v", got, want)
	}
	// Unknown agent: identity.
	got = tr.Corrected(3, at(100))
	if !got.Equal(at(100)) {
		t.Fatalf("Corrected unknown agent = %v, want identity", got)
	}
}

func TestWritesByAgentSortsBySeq(t *testing.T) {
	tr := sampleTrace()
	// Shuffle input order.
	tr.Writes[0], tr.Writes[1] = tr.Writes[1], tr.Writes[0]
	byAgent := tr.WritesByAgent()
	ws := byAgent[1]
	if len(ws) != 2 || ws[0].ID != "m1" || ws[1].ID != "m2" {
		t.Fatalf("agent1 writes = %+v, want m1,m2", ws)
	}
	if len(byAgent[2]) != 1 || byAgent[2][0].ID != "m3" {
		t.Fatalf("agent2 writes wrong: %+v", byAgent[2])
	}
}

func TestReadsByAgentSortsByInvocation(t *testing.T) {
	tr := sampleTrace()
	rs := tr.ReadsByAgent()[1]
	if len(rs) != 2 {
		t.Fatalf("agent1 reads = %d, want 2", len(rs))
	}
	if !rs[0].Invoked.Equal(at(20)) || !rs[1].Invoked.Equal(at(120)) {
		t.Fatalf("reads not sorted by invocation: %v, %v", rs[0].Invoked, rs[1].Invoked)
	}
}

func TestWriteByID(t *testing.T) {
	tr := sampleTrace()
	w, ok := tr.WriteByID("m3")
	if !ok || w.Trigger != "m2" {
		t.Fatalf("WriteByID(m3) = %+v, %v", w, ok)
	}
	if _, ok := tr.WriteByID("nope"); ok {
		t.Fatal("found nonexistent write")
	}
}

func TestAgentIDs(t *testing.T) {
	tr := sampleTrace()
	ids := tr.AgentIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("AgentIDs = %v", ids)
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*TestTrace)
	}{
		{"zero agents", func(tr *TestTrace) { tr.Agents = 0 }},
		{"empty write id", func(tr *TestTrace) { tr.Writes[0].ID = "" }},
		{"duplicate write id", func(tr *TestTrace) { tr.Writes[1].ID = tr.Writes[0].ID }},
		{"unknown write agent", func(tr *TestTrace) { tr.Writes[0].Agent = 9 }},
		{"write time inverted", func(tr *TestTrace) { tr.Writes[0].Returned = tr.Writes[0].Invoked.Add(-time.Second) }},
		{"unknown read agent", func(tr *TestTrace) { tr.Reads[0].Agent = 0 }},
		{"read time inverted", func(tr *TestTrace) { tr.Reads[0].Returned = tr.Reads[0].Invoked.Add(-time.Second) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := sampleTrace()
			tt.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tt.name)
			}
		})
	}
}

func TestTestKindString(t *testing.T) {
	if Test1.String() != "test1" || Test2.String() != "test2" {
		t.Fatal("TestKind.String wrong")
	}
	if TestKind(9).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []*TestTrace{sampleTrace(), sampleTrace()}
	in[1].TestID = 8
	in[1].Kind = Test2
	for _, tr := range in {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d traces, want 2", len(out))
	}
	if out[0].TestID != 7 || out[1].TestID != 8 {
		t.Fatalf("ids = %d,%d", out[0].TestID, out[1].TestID)
	}
	if out[1].Kind != Test2 {
		t.Fatalf("kind = %v", out[1].Kind)
	}
	if out[0].Deltas[1] != 5*time.Millisecond {
		t.Fatalf("delta lost in round trip: %v", out[0].Deltas[1])
	}
	if len(out[0].Reads[0].Observed) != 2 {
		t.Fatalf("observed lost: %+v", out[0].Reads[0])
	}
	if !out[0].Writes[2].Invoked.Equal(at(300)) {
		t.Fatalf("timestamps corrupted: %v", out[0].Writes[2].Invoked)
	}
}

func TestJSONLReadEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestJSONLReadCorrupt(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("{not json}\n")))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want decode error", err)
	}
}

func TestReadContainsQuickProperty(t *testing.T) {
	f := func(ids []string, probe string) bool {
		obs := make([]WriteID, len(ids))
		inSet := false
		for i, s := range ids {
			obs[i] = WriteID(s)
			if s == probe {
				inSet = true
			}
		}
		r := Read{Observed: obs}
		return r.Contains(WriteID(probe)) == inSet &&
			(r.Position(WriteID(probe)) >= 0) == inSet
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByServiceAndNames(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	b.Service = "alpha"
	c := sampleTrace()
	c.TestID = 9
	groups := GroupByService([]*TestTrace{a, b, c})
	if len(groups) != 2 || len(groups["googleplus"]) != 2 || len(groups["alpha"]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if groups["googleplus"][1].TestID != 9 {
		t.Fatal("order not preserved")
	}
	names := ServiceNames([]*TestTrace{a, b, c})
	if len(names) != 2 || names[0] != "alpha" || names[1] != "googleplus" {
		t.Fatalf("names = %v", names)
	}
}
