package trace

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONLReaderPositionsCorruptTail reads the committed fixture of a
// crashed writer — two complete lines followed by a record cut mid-JSON
// with no trailing newline — and checks that the good prefix decodes
// and the tail fails with a positioned, truncation-specific error.
func TestJSONLReaderPositionsCorruptTail(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "corrupt_tail.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := NewReader(f)
	for want := 1; want <= 2; want++ {
		tr, err := r.Read()
		if err != nil {
			t.Fatalf("complete line %d rejected: %v", want, err)
		}
		if tr.TestID != want {
			t.Fatalf("line %d decoded to test_id %d", want, tr.TestID)
		}
	}
	_, err = r.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated tail accepted (err = %v)", err)
	}
	if !strings.Contains(err.Error(), "trace line 3") {
		t.Fatalf("error does not name the line: %v", err)
	}
	if !strings.Contains(err.Error(), "truncated record") {
		t.Fatalf("error does not identify the truncation: %v", err)
	}
}

// TestJSONLReaderPositionsMidStreamCorruption checks that a malformed
// line in the middle of a stream (which cannot be a crash tail) is
// reported with its line number but not misdescribed as truncated.
func TestJSONLReaderPositionsMidStreamCorruption(t *testing.T) {
	input := `{"v":1,"test_id":1,"kind":1,"agents":3}` + "\n" +
		`{"v":1,"test_id":2,&&garbage` + "\n" +
		`{"v":1,"test_id":3,"kind":1,"agents":3}` + "\n"
	r := NewReader(strings.NewReader(input))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil {
		t.Fatal("corrupt middle line accepted")
	}
	if !strings.Contains(err.Error(), "trace line 2") {
		t.Fatalf("error does not name line 2: %v", err)
	}
	if strings.Contains(err.Error(), "truncated record") {
		t.Fatalf("complete-but-corrupt line misreported as truncated: %v", err)
	}
}

// TestJSONLReaderAcceptsCompleteFinalLineWithoutNewline checks that a
// valid final record merely missing its newline (a file trimmed by a
// text editor) still decodes.
func TestJSONLReaderAcceptsCompleteFinalLineWithoutNewline(t *testing.T) {
	input := `{"v":1,"test_id":1,"kind":1,"agents":3}`
	r := NewReader(strings.NewReader(input))
	tr, err := r.Read()
	if err != nil {
		t.Fatalf("complete unterminated line rejected: %v", err)
	}
	if tr.TestID != 1 {
		t.Fatalf("decoded test_id = %d", tr.TestID)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestJSONLReaderSkipsBlankLines checks blank lines are tolerated while
// still counting toward reported positions.
func TestJSONLReaderSkipsBlankLines(t *testing.T) {
	input := `{"v":1,"test_id":1,"kind":1,"agents":3}` + "\n\n" + `{"v":1,"test_id":2,&&` + "\n"
	r := NewReader(strings.NewReader(input))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "trace line 3") {
		t.Fatalf("blank line not counted in position: %v", err)
	}
}
