// Package trace defines the operation records produced by measurement
// agents and consumed by the anomaly checkers and the analysis layer.
//
// A TestTrace is the complete log of one test instance: every write and
// read issued by every agent, with invocation/response timestamps taken on
// each agent's local clock, plus the clock deltas estimated by the
// coordinator before the test started (Section IV of the paper). Traces
// are the interface between collection and analysis: live-collected JSONL
// traces and simulator-produced traces flow through identical code.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// AgentID identifies a measurement agent. The paper's deployment uses
// agents 1..3 (Oregon, Tokyo, Ireland).
type AgentID int

// WriteID uniquely identifies a write operation (the paper's M1..M6).
type WriteID string

// TestKind distinguishes the two test protocols of Section IV.
type TestKind int

// The two black-box tests.
const (
	Test1 TestKind = iota + 1 // staggered write pairs, background reads
	Test2                     // simultaneous writes, adaptive-rate reads
)

// String returns "test1" or "test2".
func (k TestKind) String() string {
	switch k {
	case Test1:
		return "test1"
	case Test2:
		return "test2"
	default:
		return fmt.Sprintf("testkind(%d)", int(k))
	}
}

// Write records one write operation.
type Write struct {
	ID    WriteID `json:"id"`
	Agent AgentID `json:"agent"`
	// Seq is the 1-based issue order of this write within its agent's
	// writes for the test.
	Seq int `json:"seq"`
	// Invoked and Returned are local-clock timestamps on the issuing
	// agent.
	Invoked  time.Time `json:"invoked"`
	Returned time.Time `json:"returned"`
	// Trigger, when non-empty, is the write whose observation caused this
	// write to be issued (the Writes-Follows-Reads dependency: M2 for M3,
	// M4 for M5 in Test 1).
	Trigger WriteID `json:"trigger,omitempty"`
}

// Read records one read operation and the sequence of writes it observed.
type Read struct {
	Agent    AgentID   `json:"agent"`
	Invoked  time.Time `json:"invoked"`
	Returned time.Time `json:"returned"`
	// Observed is the sequence of write IDs returned by the service, in
	// service order.
	Observed []WriteID `json:"observed"`
}

// Contains reports whether the read observed id.
func (r *Read) Contains(id WriteID) bool {
	for _, w := range r.Observed {
		if w == id {
			return true
		}
	}
	return false
}

// Position returns the index of id in the observed sequence, or -1.
func (r *Read) Position(id WriteID) int {
	for i, w := range r.Observed {
		if w == id {
			return i
		}
	}
	return -1
}

// TestTrace is the full log of one test instance.
type TestTrace struct {
	TestID  int      `json:"test_id"`
	Kind    TestKind `json:"kind"`
	Service string   `json:"service"`
	// Started is the coordinator-clock time at which the test began.
	Started time.Time `json:"started"`
	Agents  int       `json:"agents"`
	Writes  []Write   `json:"writes"`
	Reads   []Read    `json:"reads"`
	// Deltas maps each agent to the estimated difference
	// (coordinator clock − agent clock); adding an agent's delta to one
	// of its local timestamps yields coordinator (reference) time.
	Deltas map[AgentID]time.Duration `json:"deltas_ns,omitempty"`
	// Uncertainty is the half-RTT error bound on each delta.
	Uncertainty map[AgentID]time.Duration `json:"uncertainty_ns,omitempty"`
	// FailedOps counts operations that errored per agent (dropped from
	// Writes/Reads); live campaigns see these under rate limiting or
	// transient faults.
	FailedOps map[AgentID]int `json:"failed_ops,omitempty"`
	// SkippedOps counts operations not attempted (or rejected locally)
	// because the agent's endpoint was unhealthy — its circuit breaker
	// open. Skips are collection faults, distinct from failures: no
	// request was issued.
	SkippedOps map[AgentID]int `json:"skipped_ops,omitempty"`
	// RetriedOps counts extra attempts the resilience layer spent per
	// agent recovering transient faults during the test.
	RetriedOps map[AgentID]int `json:"retried_ops,omitempty"`
	// BreakerTrips counts circuit-breaker openings per agent during the
	// test.
	BreakerTrips map[AgentID]int `json:"breaker_trips,omitempty"`
	// ChaosActive labels the chaos-schedule windows (partitions,
	// outages, overloads) in force when the test started, so analyses
	// can correlate anomaly spikes with injected chaos. Empty on
	// undisturbed tests.
	ChaosActive []string `json:"chaos_active,omitempty"`
}

// CollectionFaults sums failed and skipped operations across agents —
// the trace's collection-fault count (operations the paper "dropped,
// but accounted").
func (t *TestTrace) CollectionFaults() int {
	n := 0
	for _, c := range t.FailedOps {
		n += c
	}
	for _, c := range t.SkippedOps {
		n += c
	}
	return n
}

// Corrected converts an agent-local timestamp to reference time using the
// trace's clock deltas. Unknown agents get no correction.
func (t *TestTrace) Corrected(agent AgentID, local time.Time) time.Time {
	return local.Add(t.Deltas[agent])
}

// WritesByAgent returns each agent's writes in issue order.
func (t *TestTrace) WritesByAgent() map[AgentID][]Write {
	out := make(map[AgentID][]Write, t.Agents)
	for _, w := range t.Writes {
		out[w.Agent] = append(out[w.Agent], w)
	}
	for _, ws := range out {
		sortWrites(ws)
	}
	return out
}

// ReadsByAgent returns each agent's reads in invocation order.
func (t *TestTrace) ReadsByAgent() map[AgentID][]Read {
	out := make(map[AgentID][]Read, t.Agents)
	for _, r := range t.Reads {
		out[r.Agent] = append(out[r.Agent], r)
	}
	for _, rs := range out {
		sortReads(rs)
	}
	return out
}

// WriteByID returns the write with the given id, if present.
func (t *TestTrace) WriteByID(id WriteID) (Write, bool) {
	for _, w := range t.Writes {
		if w.ID == id {
			return w, true
		}
	}
	return Write{}, false
}

// AgentIDs returns 1..Agents.
func (t *TestTrace) AgentIDs() []AgentID {
	out := make([]AgentID, t.Agents)
	for i := range out {
		out[i] = AgentID(i + 1)
	}
	return out
}

// Validate performs basic structural checks on the trace.
func (t *TestTrace) Validate() error {
	if t.Agents <= 0 {
		return fmt.Errorf("trace %d: non-positive agent count %d", t.TestID, t.Agents)
	}
	seen := make(map[WriteID]bool, len(t.Writes))
	for _, w := range t.Writes {
		if w.ID == "" {
			return fmt.Errorf("trace %d: write with empty id", t.TestID)
		}
		if seen[w.ID] {
			return fmt.Errorf("trace %d: duplicate write id %q", t.TestID, w.ID)
		}
		seen[w.ID] = true
		if w.Agent < 1 || int(w.Agent) > t.Agents {
			return fmt.Errorf("trace %d: write %q from unknown agent %d", t.TestID, w.ID, w.Agent)
		}
		if w.Returned.Before(w.Invoked) {
			return fmt.Errorf("trace %d: write %q returned before invoked", t.TestID, w.ID)
		}
	}
	for i, r := range t.Reads {
		if r.Agent < 1 || int(r.Agent) > t.Agents {
			return fmt.Errorf("trace %d: read %d from unknown agent %d", t.TestID, i, r.Agent)
		}
		if r.Returned.Before(r.Invoked) {
			return fmt.Errorf("trace %d: read %d returned before invoked", t.TestID, i)
		}
	}
	return nil
}

func sortWrites(ws []Write) {
	sort.SliceStable(ws, func(i, j int) bool { return lessWrite(ws[i], ws[j]) })
}

func lessWrite(a, b Write) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Invoked.Before(b.Invoked)
}

func sortReads(rs []Read) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Invoked.Before(rs[j].Invoked) })
}

// GroupByService buckets traces by their service name, preserving input
// order within each bucket.
func GroupByService(traces []*TestTrace) map[string][]*TestTrace {
	out := make(map[string][]*TestTrace)
	for _, t := range traces {
		out[t.Service] = append(out[t.Service], t)
	}
	return out
}

// ServiceNames returns the sorted service names present in traces.
func ServiceNames(traces []*TestTrace) []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range traces {
		if !seen[t.Service] {
			seen[t.Service] = true
			out = append(out, t.Service)
		}
	}
	sort.Strings(out)
	return out
}
