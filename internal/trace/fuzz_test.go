package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the JSONL decoder: it must
// never panic, and anything it successfully decodes must re-encode.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace line and near-miss corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleTrace()); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"test_id":1,"kind":9,"agents":-1}`))
	f.Add([]byte("null\n"))
	f.Add([]byte(`{"reads":[{"observed":["a","a"]}]}`))
	// Resilience-era collection accounting: the decoder must round-trip
	// the per-agent fault maps, including agents absent from the ops.
	f.Add([]byte(`{"test_id":3,"kind":1,"agents":3,` +
		`"failed_ops":{"1":2},"skipped_ops":{"2":1},` +
		`"retried_ops":{"1":5,"3":1},"breaker_trips":{"2":1}}`))
	f.Add([]byte(`{"skipped_ops":{"not-a-number":1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			tr, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input is fine, panics are not
			}
			// Decoded traces must re-encode without error.
			var out bytes.Buffer
			w := NewWriter(&out)
			if err := w.Write(tr); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			// And structural validation must not panic either.
			_ = tr.Validate()
		}
	})
}
