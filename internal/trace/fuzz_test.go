package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the JSONL decoder: it must
// never panic, and anything it successfully decodes must re-encode.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace line and near-miss corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleTrace()); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"test_id":1,"kind":9,"agents":-1}`))
	f.Add([]byte("null\n"))
	f.Add([]byte(`{"reads":[{"observed":["a","a"]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			tr, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input is fine, panics are not
			}
			// Decoded traces must re-encode without error.
			var out bytes.Buffer
			w := NewWriter(&out)
			if err := w.Write(tr); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			// And structural validation must not panic either.
			_ = tr.Validate()
		}
	})
}
