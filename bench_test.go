// Benchmark harness: one target per table and figure of the paper's
// evaluation (Section V), plus ablations over the simulator's design
// choices and micro-benchmarks of the hot paths.
//
// Campaign-backed benchmarks run a fixed-size campaign (memoized across
// targets, so `go test -bench=.` simulates each service once) and report
// the paper's quantities via b.ReportMetric:
//
//	BenchmarkTable1Test1/<svc>      reads per agent per test, test duration
//	BenchmarkTable2Test2/<svc>      reads per agent per test
//	BenchmarkFig3AnomalyPrevalence  %% of tests per anomaly per service
//	BenchmarkFig4..7<anomaly>       per-agent distribution + correlation
//	BenchmarkFig8ContentDivergence  %% of tests per agent pair
//	BenchmarkFig9ContentWindowCDF   window quantiles per service
//	BenchmarkFig10OrderWindowCDF    window quantiles + converged fraction
//
// Run `go test -bench=. -benchmem` and compare against EXPERIMENTS.md.
package conprobe_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"conprobe"
	"conprobe/internal/analysis"
	"conprobe/internal/clocksync"
	"conprobe/internal/core"
	"conprobe/internal/httpapi"
	"conprobe/internal/probe"
	"conprobe/internal/service"
	"conprobe/internal/simnet"
	"conprobe/internal/stats"
	"conprobe/internal/store"
	"conprobe/internal/trace"
	"conprobe/internal/vtime"
)

// benchTests is the per-kind campaign size used by the figure benches.
// The paper ran ~1000 instances per kind per service; 80 keeps the full
// bench suite fast while preserving the shapes. Scale up with
// cmd/conprobe -paper for publication-grade runs.
const benchTests = 80

const benchSeed = 3

var (
	campaignMu    sync.Mutex
	campaignCache = make(map[string]*analysis.Report)
	traceCache    = make(map[string][]*trace.TestTrace)
)

// benchCampaign memoizes one full campaign per service.
func benchCampaign(b *testing.B, svc string) (*analysis.Report, []*trace.TestTrace) {
	b.Helper()
	campaignMu.Lock()
	defer campaignMu.Unlock()
	if rep, ok := campaignCache[svc]; ok {
		return rep, traceCache[svc]
	}
	res, err := probe.Simulate(probe.SimulateOptions{
		Service:    svc,
		Test1Count: benchTests,
		Test2Count: benchTests,
		Seed:       benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := analysis.Analyze(res.Service, res.Traces)
	campaignCache[svc] = rep
	traceCache[svc] = res.Traces
	return rep, res.Traces
}

func services() []string { return service.ProfileNames() }

// --- Table I / Table II -------------------------------------------------

// BenchmarkTable1Test1 regenerates Table I: reads per agent per test and
// wall-clock (virtual) duration per test for the Test 1 protocol.
func BenchmarkTable1Test1(b *testing.B) {
	for _, svc := range services() {
		svc := svc
		b.Run(svc, func(b *testing.B) {
			_, traces := benchCampaign(b, svc)
			var reads, tests int
			for _, tr := range traces {
				if tr.Kind != trace.Test1 {
					continue
				}
				tests++
				reads += len(tr.Reads)
			}
			for i := 0; i < b.N; i++ {
				_ = reads
			}
			if tests > 0 {
				b.ReportMetric(float64(reads)/float64(tests*3), "reads/agent/test")
				b.ReportMetric(float64(tests), "tests")
			}
		})
	}
}

// BenchmarkTable2Test2 regenerates Table II: reads per agent per test
// under the adaptive read schedule.
func BenchmarkTable2Test2(b *testing.B) {
	for _, svc := range services() {
		svc := svc
		b.Run(svc, func(b *testing.B) {
			_, traces := benchCampaign(b, svc)
			var reads, tests int
			for _, tr := range traces {
				if tr.Kind != trace.Test2 {
					continue
				}
				tests++
				reads += len(tr.Reads)
			}
			for i := 0; i < b.N; i++ {
				_ = reads
			}
			if tests > 0 {
				b.ReportMetric(float64(reads)/float64(tests*3), "reads/agent/test")
				b.ReportMetric(float64(tests), "tests")
			}
		})
	}
}

// --- Figure 3 ------------------------------------------------------------

// BenchmarkFig3AnomalyPrevalence regenerates Figure 3: the percentage of
// tests exhibiting each anomaly, per service.
func BenchmarkFig3AnomalyPrevalence(b *testing.B) {
	for _, svc := range services() {
		svc := svc
		b.Run(svc, func(b *testing.B) {
			rep, _ := benchCampaign(b, svc)
			for i := 0; i < b.N; i++ {
				_ = rep
			}
			b.ReportMetric(rep.Session[core.ReadYourWrites].Prevalence(), "RYW_%")
			b.ReportMetric(rep.Session[core.MonotonicWrites].Prevalence(), "MW_%")
			b.ReportMetric(rep.Session[core.MonotonicReads].Prevalence(), "MR_%")
			b.ReportMetric(rep.Session[core.WritesFollowsReads].Prevalence(), "WFR_%")
			b.ReportMetric(rep.Divergence[core.ContentDivergence].Prevalence(), "CD_%")
			b.ReportMetric(rep.Divergence[core.OrderDivergence].Prevalence(), "OD_%")
		})
	}
}

// --- Figures 4-7 ----------------------------------------------------------

// sessionFigure reports one session anomaly's per-test distribution
// (share of violating agent-tests with a single observation vs several)
// and the fraction of violating tests seen by exactly one agent — the
// quantities plotted in Figures 4-7.
func sessionFigure(b *testing.B, anomaly core.Anomaly, svcs []string) {
	b.Helper()
	for _, svc := range svcs {
		svc := svc
		b.Run(svc, func(b *testing.B) {
			rep, _ := benchCampaign(b, svc)
			s := rep.Session[anomaly]
			for i := 0; i < b.N; i++ {
				_ = s
			}
			b.ReportMetric(s.Prevalence(), "prevalence_%")
			single, multi := 0, 0
			for _, counts := range s.PerTestCounts {
				for _, c := range counts {
					if c == 1 {
						single++
					} else {
						multi++
					}
				}
			}
			if single+multi > 0 {
				b.ReportMetric(100*float64(single)/float64(single+multi), "single_obs_%")
			}
			if s.TestsWithAnomaly > 0 {
				b.ReportMetric(100*s.ExclusiveFraction(), "one_agent_only_%")
			}
		})
	}
}

// BenchmarkFig4ReadYourWrites regenerates Figure 4 (Google+, FB Feed).
func BenchmarkFig4ReadYourWrites(b *testing.B) {
	sessionFigure(b, core.ReadYourWrites, []string{service.NameGooglePlus, service.NameFBFeed})
}

// BenchmarkFig5MonotonicWrites regenerates Figure 5 (Google+ and both
// Facebook services).
func BenchmarkFig5MonotonicWrites(b *testing.B) {
	sessionFigure(b, core.MonotonicWrites,
		[]string{service.NameGooglePlus, service.NameFBFeed, service.NameFBGroup})
}

// BenchmarkFig6MonotonicReads regenerates Figure 6 (Google+, FB Feed).
func BenchmarkFig6MonotonicReads(b *testing.B) {
	sessionFigure(b, core.MonotonicReads, []string{service.NameGooglePlus, service.NameFBFeed})
}

// BenchmarkFig7WritesFollowsReads regenerates Figure 7 (Google+, FB
// Feed).
func BenchmarkFig7WritesFollowsReads(b *testing.B) {
	sessionFigure(b, core.WritesFollowsReads, []string{service.NameGooglePlus, service.NameFBFeed})
}

// --- Figure 8 --------------------------------------------------------------

// BenchmarkFig8ContentDivergence regenerates Figure 8: percentage of
// tests with content divergence per agent pair.
func BenchmarkFig8ContentDivergence(b *testing.B) {
	for _, svc := range []string{service.NameGooglePlus, service.NameFBFeed, service.NameFBGroup} {
		svc := svc
		b.Run(svc, func(b *testing.B) {
			rep, _ := benchCampaign(b, svc)
			d := rep.Divergence[core.ContentDivergence]
			for i := 0; i < b.N; i++ {
				_ = d
			}
			for _, p := range d.SortedPairs() {
				ps := d.PerPair[p]
				b.ReportMetric(ps.Prevalence(), fmt.Sprintf("pair%d-%d_%%", p.A, p.B))
			}
		})
	}
}

// --- Figures 9 and 10 -------------------------------------------------------

func windowFigure(b *testing.B, anomaly core.Anomaly, svcs []string) {
	b.Helper()
	for _, svc := range svcs {
		svc := svc
		b.Run(svc, func(b *testing.B) {
			rep, _ := benchCampaign(b, svc)
			d := rep.Divergence[anomaly]
			for i := 0; i < b.N; i++ {
				_ = d
			}
			var all []time.Duration
			converged, total := 0, 0
			for _, ps := range d.PerPair {
				all = append(all, ps.Windows...)
				converged += len(ps.Windows)
				total += len(ps.Windows) + ps.NotConverged
			}
			cdf := conprobe.NewCDF(all)
			b.ReportMetric(cdf.Quantile(0.5).Seconds()*1000, "p50_ms")
			b.ReportMetric(cdf.Quantile(0.9).Seconds()*1000, "p90_ms")
			b.ReportMetric(cdf.Max().Seconds()*1000, "max_ms")
			if total > 0 {
				b.ReportMetric(100*float64(converged)/float64(total), "converged_%")
			}
		})
	}
}

// BenchmarkFig9ContentWindowCDF regenerates Figure 9: the CDF of content
// divergence windows (largest per pair per test).
func BenchmarkFig9ContentWindowCDF(b *testing.B) {
	windowFigure(b, core.ContentDivergence,
		[]string{service.NameGooglePlus, service.NameFBFeed, service.NameFBGroup})
}

// BenchmarkFig10OrderWindowCDF regenerates Figure 10: the CDF of order
// divergence windows, with the fraction of runs that converged.
func BenchmarkFig10OrderWindowCDF(b *testing.B) {
	windowFigure(b, core.OrderDivergence,
		[]string{service.NameGooglePlus, service.NameFBFeed})
}

// --- Methodology: clock synchronization (Section IV) -----------------------

// BenchmarkClockSync measures the Cristian-style estimator: error of the
// recovered delta versus the true skew, and its reported uncertainty.
func BenchmarkClockSync(b *testing.B) {
	sim := vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.DefaultTopology(1, simnet.WithJitter(0.2))
	const skew = 1500 * time.Millisecond
	var (
		errSum, uncSum time.Duration
		n              int
	)
	done := make(chan struct{})
	sim.Go(func() {
		defer close(done)
		ac := clocksync.NewSkewedClock(sim, skew)
		probeFn := clocksync.SimProbe(sim, net, simnet.Virginia, simnet.Tokyo, ac, 1)
		for i := 0; i < b.N; i++ {
			res, err := clocksync.Estimate(sim, probeFn, 5)
			if err != nil {
				b.Error(err)
				return
			}
			e := res.Delta + skew
			if e < 0 {
				e = -e
			}
			errSum += e
			uncSum += res.Uncertainty
			n++
		}
	})
	sim.Wait()
	<-done
	if n > 0 {
		b.ReportMetric(float64(errSum.Microseconds())/float64(n), "err_us")
		b.ReportMetric(float64(uncSum.Microseconds())/float64(n), "uncert_us")
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---------------------

// ablationCampaign runs a small campaign over a custom profile.
func ablationCampaign(b *testing.B, name string, prof service.Profile, t1, t2 int) *analysis.Report {
	b.Helper()
	res, err := probe.Simulate(probe.SimulateOptions{
		Service:    name,
		Test1Count: t1,
		Test2Count: t2,
		Seed:       benchSeed,
		Profile:    &prof,
	})
	if err != nil {
		b.Fatal(err)
	}
	return analysis.Analyze(res.Service, res.Traces)
}

// BenchmarkAblationStoreMode compares strong vs eventual replication for
// the same topology: strong eliminates content divergence entirely.
func BenchmarkAblationStoreMode(b *testing.B) {
	for _, mode := range []store.Mode{store.Strong, store.Eventual} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			prof := service.GooglePlus()
			prof.ReadFlapProb = 0
			if mode == store.Strong {
				prof.Store.Mode = store.Strong
			}
			var rep *analysis.Report
			for i := 0; i < b.N; i++ {
				rep = ablationCampaign(b, service.NameGooglePlus, prof, 0, 20)
			}
			b.ReportMetric(rep.Divergence[core.ContentDivergence].Prevalence(), "CD_%")
		})
	}
}

// BenchmarkAblationSelection toggles Facebook Feed's interest-based read
// selection: without it, order divergence collapses toward the store's
// native behavior.
func BenchmarkAblationSelection(b *testing.B) {
	for _, sel := range []bool{true, false} {
		sel := sel
		name := "with-selection"
		if !sel {
			name = "without-selection"
		}
		b.Run(name, func(b *testing.B) {
			prof := service.FBFeed()
			if !sel {
				prof.Selection = nil
			}
			var rep *analysis.Report
			for i := 0; i < b.N; i++ {
				rep = ablationCampaign(b, service.NameFBFeed, prof, 20, 20)
			}
			b.ReportMetric(rep.Session[core.MonotonicReads].Prevalence(), "MR_%")
			b.ReportMetric(rep.Divergence[core.OrderDivergence].Prevalence(), "OD_%")
		})
	}
}

// BenchmarkAblationTieBreak toggles Facebook Group's reversed same-second
// tie-break — the single mechanism behind its monotonic-writes anomaly.
func BenchmarkAblationTieBreak(b *testing.B) {
	for _, reversed := range []bool{true, false} {
		reversed := reversed
		name := "reversed-ties"
		if !reversed {
			name = "arrival-ties"
		}
		b.Run(name, func(b *testing.B) {
			prof := service.FBGroup()
			prof.Store.Policy.ReverseTies = reversed
			var rep *analysis.Report
			for i := 0; i < b.N; i++ {
				rep = ablationCampaign(b, service.NameFBGroup, prof, 25, 0)
			}
			b.ReportMetric(rep.Session[core.MonotonicWrites].Prevalence(), "MW_%")
		})
	}
}

// BenchmarkAblationSessionMasking quantifies the client-side masking of
// Section V's discussion: raw vs wrapped agents on Facebook Feed.
func BenchmarkAblationSessionMasking(b *testing.B) {
	for _, masked := range []bool{false, true} {
		masked := masked
		name := "raw"
		if masked {
			name = "masked"
		}
		b.Run(name, func(b *testing.B) {
			var wrap probe.ClientWrapper
			if masked {
				wrap = func(ag probe.Agent, svc service.Service) service.Service {
					return conprobe.WrapSession(svc, ag.Label(), conprobe.MaskAll)
				}
			}
			var violations int
			for i := 0; i < b.N; i++ {
				res, err := probe.Simulate(probe.SimulateOptions{
					Service:    service.NameFBFeed,
					Test1Count: 10,
					Seed:       benchSeed,
					Wrap:       wrap,
				})
				if err != nil {
					b.Fatal(err)
				}
				violations = 0
				for _, tr := range res.Traces {
					violations += len(core.CheckReadYourWrites(tr)) +
						len(core.CheckMonotonicReads(tr))
				}
			}
			b.ReportMetric(float64(violations), "RYW+MR_violations")
		})
	}
}

// --- Micro-benchmarks: hot paths -------------------------------------------

// BenchmarkCheckTest measures the full checker battery over a realistic
// Test 2 trace.
func BenchmarkCheckTest(b *testing.B) {
	_, traces := benchCampaign(b, service.NameFBFeed)
	var tr *trace.TestTrace
	for _, t := range traces {
		if t.Kind == trace.Test2 {
			tr = t
			break
		}
	}
	if tr == nil {
		b.Fatal("no test2 trace")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := core.CheckTest(tr); len(vs) == 0 {
			_ = vs
		}
	}
}

// BenchmarkDivergenceWindows measures the timeline-scan window
// computation.
func BenchmarkDivergenceWindows(b *testing.B) {
	_, traces := benchCampaign(b, service.NameGooglePlus)
	var tr *trace.TestTrace
	for _, t := range traces {
		if t.Kind == trace.Test2 {
			tr = t
			break
		}
	}
	if tr == nil {
		b.Fatal("no test2 trace")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.ContentDivergenceWindows(tr)
		_ = core.OrderDivergenceWindows(tr)
	}
}

// BenchmarkSimScheduler measures the virtual-time scheduler's event
// throughput (sleep-wake cycles per second across contending actors).
func BenchmarkSimScheduler(b *testing.B) {
	sim := vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	const actors = 8
	per := b.N/actors + 1
	for a := 0; a < actors; a++ {
		a := a
		sim.Go(func() {
			for i := 0; i < per; i++ {
				sim.Sleep(time.Duration(1+(a+i)%5) * time.Millisecond)
			}
		})
	}
	sim.Wait()
}

// BenchmarkStoreWrite measures replicated-store write throughput with
// propagation scheduling.
func BenchmarkStoreWrite(b *testing.B) {
	sim := vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.DefaultTopology(1)
	c, err := store.NewCluster(sim, net, store.Config{
		Mode:  store.Eventual,
		Sites: []simnet.Site{simnet.DCWest, simnet.DCAsia, simnet.DCEurope},
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, b.N)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%d", i)
	}
	b.ResetTimer()
	done := make(chan struct{})
	sim.Go(func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(simnet.DCWest, ids[i], "a", ""); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sim.Wait()
	<-done
}

// BenchmarkTraceJSONL measures the trace codec round trip.
func BenchmarkTraceJSONL(b *testing.B) {
	_, traces := benchCampaign(b, service.NameGooglePlus)
	tr := traces[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writerCounter
		w := trace.NewWriter(&buf)
		if err := w.Write(tr); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

type writerCounter struct{ n int }

func (w *writerCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkCampaign measures the end-to-end simulation rate: one full
// test (clock sync + protocol + analysis-ready trace) per iteration.
func BenchmarkCampaign(b *testing.B) {
	for _, svc := range []string{service.NameBlogger, service.NameFBGroup} {
		svc := svc
		b.Run(svc, func(b *testing.B) {
			res, err := probe.Simulate(probe.SimulateOptions{
				Service:    svc,
				Test1Count: b.N,
				Seed:       benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Traces) != b.N {
				b.Fatalf("got %d traces", len(res.Traces))
			}
		})
	}
}

// BenchmarkCampaignParallel measures the concurrent engine's
// throughput across worker counts on a 1k-instance campaign. Each
// iteration runs the full campaign through SimulateConcurrent with 8
// lanes and the named parallelism, streaming traces (DiscardTraces)
// so memory stays flat. The tests/sec metric is the comparison point
// across rows; on a single-core host the rows collapse to the same
// rate, so no speedup is asserted here — the scaling claim is checked
// offline from the emitted BENCH data.
func BenchmarkCampaignParallel(b *testing.B) {
	const campaignTests = 1000
	for _, par := range []int{1, 2, 4, 8} {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			opts := probe.SimulateOptions{
				Service:       service.NameFBGroup,
				Test1Count:    campaignTests / 2,
				Test2Count:    campaignTests / 2,
				Seed:          benchSeed,
				DiscardTraces: true,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := probe.SimulateConcurrent(context.Background(), opts, probe.EngineOptions{
					Lanes:       probe.DefaultLanes,
					Parallelism: par,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N*campaignTests)/s, "tests/sec")
			}
		})
	}
}

// BenchmarkSessionMiddleware measures the masking layer's per-read
// overhead on realistic read sizes.
func BenchmarkSessionMiddleware(b *testing.B) {
	posts := make([]service.Post, 20)
	for i := range posts {
		posts[i] = service.Post{ID: fmt.Sprintf("m%d", i), Author: "agent2"}
	}
	svc := &replayService{posts: posts}
	client := conprobe.WrapSession(svc, "agent1", conprobe.MaskAll)
	if err := client.Write(simnet.Oregon, service.Post{ID: "own-1", Author: "agent1"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(simnet.Oregon, "agent1"); err != nil {
			b.Fatal(err)
		}
	}
}

// replayService returns a fixed post list.
type replayService struct{ posts []service.Post }

func (r *replayService) Name() string { return "replay" }
func (r *replayService) Write(simnet.Site, service.Post) error {
	return nil
}
func (r *replayService) Read(simnet.Site, string) ([]service.Post, error) {
	return append([]service.Post(nil), r.posts...), nil
}
func (r *replayService) Reset() error { return nil }

// BenchmarkStreamChecker measures the online detector's per-read cost.
func BenchmarkStreamChecker(b *testing.B) {
	s := core.NewStream()
	obs := make([]trace.WriteID, 12)
	for i := range obs {
		obs[i] = trace.WriteID(fmt.Sprintf("m%d", i))
	}
	s.ObserveWrite(trace.Write{ID: "m0", Agent: 1, Seq: 1})
	s.ObserveWrite(trace.Write{ID: "m1", Agent: 1, Seq: 2})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ObserveRead(trace.Read{Agent: trace.AgentID(1 + i%3), Observed: obs})
	}
}

// BenchmarkSelectionApply measures the interest-ranking hot path.
func BenchmarkSelectionApply(b *testing.B) {
	sel := &service.Selection{FreshFor: time.Hour, Shuffle: 0.1, DropFresh: 0.02}
	_ = sel
	// Selection.apply is unexported; exercise it through a Simulated
	// read instead.
	sim := vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.DefaultTopology(1)
	prof := service.FBFeed()
	prof.APIDelay = 0
	svc, err := service.NewSimulated(sim, net, prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	b.ResetTimer()
	sim.Go(func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			if err := svc.Write(simnet.Oregon, service.Post{ID: fmt.Sprintf("m%d", i), Author: "a"}); err != nil {
				b.Error(err)
				return
			}
		}
		for i := 0; i < b.N; i++ {
			if _, err := svc.Read(simnet.Oregon, "agent1"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sim.Wait()
	<-done
}

// BenchmarkHTTPRoundTrip measures the full HTTP facade round trip
// against an in-memory service.
func BenchmarkHTTPRoundTrip(b *testing.B) {
	prof := service.Blogger()
	prof.APIDelay = 0
	net := simnet.DefaultTopology(1, simnet.WithJitter(0))
	// Measure the HTTP facade, not the WAN model: collapse the client's
	// path to its data center.
	net.SetRTT(simnet.Oregon, simnet.DCEast, 100*time.Microsecond)
	svc, err := service.NewSimulated(vtime.Real{}, net, prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	server := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerConfig{}))
	defer server.Close()
	client, err := httpapi.NewClient(server.URL, "bench", server.Client())
	if err != nil {
		b.Fatal(err)
	}
	if err := client.Write(simnet.Oregon, service.Post{ID: "m1", Author: "a"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(simnet.Oregon, "agent1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdaptiveReads compares the paper's adaptive read
// schedule against a fixed 1s schedule: the fast initial reads buy
// higher window resolution for the same read budget.
func BenchmarkAblationAdaptiveReads(b *testing.B) {
	for _, adaptive := range []bool{true, false} {
		adaptive := adaptive
		name := "adaptive"
		if !adaptive {
			name = "fixed-1s"
		}
		b.Run(name, func(b *testing.B) {
			var p50 float64
			for i := 0; i < b.N; i++ {
				sim := vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
				net := simnet.DefaultTopology(benchSeed)
				svc, err := service.NewSimulated(sim, net, service.GooglePlus(), benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				agents := probe.DefaultAgents(sim, time.Second, benchSeed)
				t2 := probe.TestConfig{
					ReadPeriod:    300 * time.Millisecond,
					FastReads:     14,
					SlowPeriod:    time.Second,
					ReadsPerAgent: 45,
					Gap:           time.Minute,
					Count:         25,
				}
				if !adaptive {
					t2.ReadPeriod = time.Second
					t2.FastReads = 0
					t2.ReadsPerAgent = 20 // comparable total test length
				}
				cfg := probe.Config{Agents: agents, Coordinator: simnet.Virginia, Test2: t2}
				runner, err := probe.NewRunner(sim, net, svc, cfg)
				if err != nil {
					b.Fatal(err)
				}
				var res *probe.Result
				sim.Go(func() {
					var err error
					res, err = runner.RunCampaign(context.Background())
					if err != nil {
						b.Error(err)
					}
				})
				sim.Wait()
				rep := analysis.Analyze("gplus", res.Traces)
				var all []time.Duration
				for _, ps := range rep.Divergence[core.ContentDivergence].PerPair {
					all = append(all, ps.Windows...)
				}
				p50 = conprobe.NewCDF(all).Quantile(0.5).Seconds() * 1000
			}
			b.ReportMetric(p50, "window_p50_ms")
		})
	}
}

// BenchmarkAblationEpochJitter toggles the per-epoch replication lag:
// without it, divergence windows collapse to a narrow band and the
// smooth CDFs of Figure 9 disappear (KS distance against the full model
// reported).
func BenchmarkAblationEpochJitter(b *testing.B) {
	windows := func(epochJitter bool) []float64 {
		prof := service.GooglePlus()
		if !epochJitter {
			prof.Store.EpochJitter = 0
			prof.Store.FastEpochProb = 0
		}
		rep := ablationCampaign(b, service.NameGooglePlus, prof, 0, 25)
		var out []float64
		for _, ps := range rep.Divergence[core.ContentDivergence].PerPair {
			for _, w := range ps.Windows {
				out = append(out, w.Seconds())
			}
		}
		return out
	}
	for _, jitter := range []bool{true, false} {
		jitter := jitter
		name := "with-epoch-jitter"
		if !jitter {
			name = "without-epoch-jitter"
		}
		b.Run(name, func(b *testing.B) {
			var ks float64
			var spread float64
			for i := 0; i < b.N; i++ {
				full := windows(true)
				variant := windows(jitter)
				ks = stats.KSDistance(full, variant)
				spread = stats.Percentile(variant, 90) - stats.Percentile(variant, 10)
			}
			b.ReportMetric(ks, "KS_vs_full")
			b.ReportMetric(spread*1000, "p90-p10_ms")
		})
	}
}
