package conprobe_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"conprobe"
	"conprobe/internal/faultinject"
	"conprobe/internal/resilience"
)

var errInjectedCrash = errors.New("injected crash")

func resumeBaseOptions() conprobe.Options {
	return conprobe.Options{
		Workload: conprobe.Workload{
			Service:    conprobe.ServiceFBFeed,
			Test1Count: 6,
			Test2Count: 6,
			Seed:       5,
		},
		Engine: conprobe.Engine{Lanes: 4},
	}
}

// renderOutput canonicalizes a campaign's full output — the rendered
// report plus every trace as JSON Lines (via the shared renderRun
// helper) — so byte comparison covers both the analysis and the data.
func renderOutput(t *testing.T, out *conprobe.RunResult) string {
	t.Helper()
	traces, rep := renderRun(t, out)
	return string(rep) + string(traces)
}

// TestResumeByteIdentical is the kill-and-resume sweep: a campaign
// killed after k completed tests and resumed from its journal must
// produce byte-identical output to an uninterrupted run, at any
// parallelism.
func TestResumeByteIdentical(t *testing.T) {
	base := resumeBaseOptions()
	ref, err := conprobe.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderOutput(t, ref)

	for _, par := range []int{1, 8} {
		for _, kill := range []int{1, 3, 5, 8, 10} {
			path := filepath.Join(t.TempDir(), "campaign.ckpt")

			crashed := base
			crashed.Engine.Parallelism = par
			crashed.Durability.Checkpoint = path
			seen := 0
			crashed.Engine.OnTrace = func(tr *conprobe.TestTrace) error {
				seen++
				if seen >= kill {
					return errInjectedCrash
				}
				return nil
			}
			if _, err := conprobe.Run(context.Background(), crashed); !errors.Is(err, errInjectedCrash) {
				t.Fatalf("par %d kill %d: crash run returned %v, want injected crash", par, kill, err)
			}

			resumed := base
			resumed.Engine.Parallelism = par
			resumed.Durability.Checkpoint = path
			resumed.Durability.Resume = true
			out, err := conprobe.Run(context.Background(), resumed)
			if err != nil {
				t.Fatalf("par %d kill %d: resume: %v", par, kill, err)
			}
			if got := renderOutput(t, out); got != want {
				t.Errorf("par %d kill %d: resumed output differs from uninterrupted run", par, kill)
			}
		}
	}
}

// breakerResumeOptions is a campaign whose injected faults make the
// resilience middleware do real work — retries, recoveries and breaker
// trips — so resuming it exercises the journaled middleware state.
func breakerResumeOptions() conprobe.Options {
	opts := resumeBaseOptions()
	// An outage blanket over each lane's first test trips every breaker;
	// the background fail rates keep re-tripping them later, so open
	// windows, failure streaks and half-open recoveries all land on
	// checkpoint boundaries. The shape is chosen so that state genuinely
	// crosses those boundaries: OpenFor stays below the inter-test gap
	// (the pre-test reset is admitted as a half-open probe instead of
	// aborting against a still-open breaker), FailureThreshold exceeds
	// MaxAttempts (a failure streak can survive a test end without
	// tripping), and HalfOpenSuccesses > 1 (a breaker that tripped late
	// in one test is still probing during the next).
	opts.Faults = &faultinject.Config{
		WriteFailRate: 0.15,
		ReadFailRate:  0.15,
		Outages:       []faultinject.Outage{{Start: time.Second, End: 20 * time.Second}},
	}
	opts.Resilience.Retry = &resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond}
	opts.Resilience.Breaker = &resilience.BreakerConfig{
		FailureThreshold:  3,
		OpenFor:           90 * time.Second,
		HalfOpenSuccesses: 3,
	}
	return opts
}

// TestResumeWithBreakerByteIdentical is the breaker half of the
// kill-and-resume sweep: breaker position and retry counters are
// journaled per lane and rewound on resume, so a campaign running with
// a circuit breaker must also reproduce the uninterrupted run's output
// byte for byte.
func TestResumeWithBreakerByteIdentical(t *testing.T) {
	base := breakerResumeOptions()
	ref, err := conprobe.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderOutput(t, ref)

	// Sequential lanes make each kill point a deterministic checkpoint
	// boundary, and these kills each land one or two tests INTO a lane,
	// so the resumed lane restarts mid-sequence from journaled
	// middleware state rather than replaying the lane from scratch.
	// kill=8 in particular resumes lane 2 right after its first test,
	// whose journal carries an open breaker and a mid-probe half-open
	// one into the re-run of the test where that breaker re-trips —
	// state the resumed lane must reproduce, not rebuild.
	for _, kill := range []int{2, 5, 8, 11} {
		path := filepath.Join(t.TempDir(), "campaign.ckpt")

		crashed := base
		crashed.Engine.Parallelism = 1
		crashed.Durability.Checkpoint = path
		seen := 0
		crashed.Engine.OnTrace = func(tr *conprobe.TestTrace) error {
			seen++
			if seen >= kill {
				return errInjectedCrash
			}
			return nil
		}
		if _, err := conprobe.Run(context.Background(), crashed); !errors.Is(err, errInjectedCrash) {
			t.Fatalf("kill %d: crash run returned %v, want injected crash", kill, err)
		}

		resumed := base
		resumed.Engine.Parallelism = 1
		resumed.Durability.Checkpoint = path
		resumed.Durability.Resume = true
		out, err := conprobe.Run(context.Background(), resumed)
		if err != nil {
			t.Fatalf("kill %d: resume: %v", kill, err)
		}
		if got := renderOutput(t, out); got != want {
			t.Errorf("kill %d: resumed breaker campaign differs from uninterrupted run", kill)
		}
	}
}

// TestResumeAfterTornTail truncates the journal mid-line — the torn
// write of a crash during an append — and checks the resumed campaign
// still reproduces the uninterrupted output (the torn test re-runs).
func TestResumeAfterTornTail(t *testing.T) {
	base := resumeBaseOptions()
	ref, err := conprobe.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderOutput(t, ref)

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	crashed := base
	crashed.Durability.Checkpoint = path
	seen := 0
	crashed.Engine.OnTrace = func(tr *conprobe.TestTrace) error {
		seen++
		if seen >= 8 {
			return errInjectedCrash
		}
		return nil
	}
	if _, err := conprobe.Run(context.Background(), crashed); !errors.Is(err, errInjectedCrash) {
		t.Fatalf("crash run returned %v, want injected crash", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-30], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := base
	resumed.Durability.Checkpoint = path
	resumed.Durability.Resume = true
	out, err := conprobe.Run(context.Background(), resumed)
	if err != nil {
		t.Fatalf("resume after torn tail: %v", err)
	}
	if got := renderOutput(t, out); got != want {
		t.Error("resumed output after torn tail differs from uninterrupted run")
	}
}

// TestResumeOfFinishedCampaignIsNoOp checks the journal of a campaign
// that ran to completion resumes into the identical result without
// running any tests.
func TestResumeOfFinishedCampaignIsNoOp(t *testing.T) {
	base := resumeBaseOptions()
	path := filepath.Join(t.TempDir(), "campaign.ckpt")

	first := base
	first.Durability.Checkpoint = path
	ref, err := conprobe.Run(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	want := renderOutput(t, ref)

	resumed := base
	resumed.Durability.Checkpoint = path
	resumed.Durability.Resume = true
	reran := 0
	resumed.Engine.OnTrace = func(tr *conprobe.TestTrace) error { reran++; return nil }
	out, err := conprobe.Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if reran != 0 {
		t.Errorf("resume of a finished campaign re-ran %d tests", reran)
	}
	if got := renderOutput(t, out); got != want {
		t.Error("resume of a finished campaign changed the output")
	}
}

func TestResumeGuards(t *testing.T) {
	base := resumeBaseOptions()

	noPath := base
	noPath.Durability.Resume = true
	if _, err := conprobe.Run(context.Background(), noPath); err == nil ||
		!strings.Contains(err.Error(), "Checkpoint") {
		t.Errorf("Resume without Checkpoint: %v", err)
	}

	// A journal from different campaign options must be refused.
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	first := base
	first.Durability.Checkpoint = path
	if _, err := conprobe.Run(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	other := base
	other.Workload.Seed++
	other.Durability.Checkpoint = path
	other.Durability.Resume = true
	if _, err := conprobe.Run(context.Background(), other); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Errorf("mismatched journal accepted: %v", err)
	}
}
