// Divergence: measure content- and order-divergence windows (the paper's
// quantitative metrics, Figures 9 and 10) across all four services and
// print their CDFs side by side.
//
//	go run ./examples/divergence
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"conprobe"
)

func main() {
	quantiles := []float64{0.25, 0.5, 0.75, 0.9, 0.99}

	fmt.Println("content divergence windows per service (Test 2 campaigns)")
	fmt.Printf("%-12s %8s", "service", "samples")
	for _, q := range quantiles {
		fmt.Printf(" %8s", fmt.Sprintf("p%.0f", q*100))
	}
	fmt.Println()

	for _, name := range conprobe.ProfileNames() {
		res, err := conprobe.Run(context.Background(), conprobe.Options{
			Workload: conprobe.Workload{
				Service:    name,
				Test2Count: 60,
				Seed:       7,
			},
		})
		if err != nil {
			log.Fatal(err)
		}

		// Collect each pair's largest window per test, as the paper does.
		var samples []time.Duration
		for _, tr := range res.Traces {
			for _, w := range conprobe.ContentDivergenceWindows(tr) {
				if w.Converged && w.Largest > 0 {
					samples = append(samples, w.Largest)
				}
			}
		}
		cdf := conprobe.NewCDF(samples)
		fmt.Printf("%-12s %8d", name, cdf.N())
		for _, q := range quantiles {
			fmt.Printf(" %8s", short(cdf.Quantile(q)))
		}
		fmt.Println()
	}
	fmt.Println("\n(blogger shows no divergence at all: strong consistency;")
	fmt.Println(" googleplus converges in seconds, the facebook services faster,")
	fmt.Println(" matching Figure 9 of the paper)")
}

func short(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}
