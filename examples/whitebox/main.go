// Whitebox: the paper's future-work extension. A white-box monitor
// samples the replica logs of a weakly consistent store directly while a
// black-box Test 2 style workload runs against it, and the ground-truth
// divergence windows are compared with what the black-box agents could
// estimate from their reads. The gap is the measurement error inherent
// to black-box probing: bounded by the read sampling period.
//
//	go run ./examples/whitebox
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"conprobe"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := conprobe.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := conprobe.DefaultTopology(1)

	// A two-DC eventually consistent service, Google+-like but with
	// fixed second-scale lag for a clean comparison.
	profile := conprobe.GooglePlusProfile()
	profile.Store.PropagationBase = 2 * time.Second
	profile.Store.PropagationJitter = 300 * time.Millisecond
	profile.Store.EpochJitter = 0
	profile.Store.FastEpochProb = 0
	profile.ReadFlapProb = 0
	svcIface, err := conprobe.NewSimulatedService(sim, net, profile, 1)
	if err != nil {
		return err
	}
	svc := svcIface.(interface {
		conprobe.Service
		Cluster() *conprobe.StoreCluster
	})

	// White-box: sample the replica logs every 5ms (ground truth).
	monitor, err := conprobe.NewWhiteboxMonitor(sim, svc.Cluster(), 5*time.Millisecond)
	if err != nil {
		return err
	}

	// Black-box: a single Test 2 instance with the paper's 300ms reads.
	agents := conprobe.DefaultAgents(sim, time.Second, 2)
	cfg := conprobe.CampaignConfig{
		Agents:      agents,
		Coordinator: conprobe.Virginia,
		Test2: conprobe.TestConfig{
			ReadPeriod:    300 * time.Millisecond,
			FastReads:     14,
			SlowPeriod:    time.Second,
			ReadsPerAgent: 30,
			Count:         1,
		},
	}
	runner, err := conprobe.NewRunner(sim, net, svc, cfg)
	if err != nil {
		return err
	}

	var (
		trace *conprobe.TestTrace
		wbRes []conprobe.WhiteboxPairWindows
	)
	sim.Go(func() {
		if err := monitor.Start(); err != nil {
			log.Println(err)
			return
		}
		tr, err := runner.RunTest2(context.Background(), 1)
		if err != nil {
			log.Println(err)
			return
		}
		trace = tr
		wbRes = monitor.Stop()
	})
	sim.Wait()
	if trace == nil {
		return fmt.Errorf("test did not complete")
	}

	fmt.Println("content divergence windows: ground truth (white-box) vs black-box estimate")
	fmt.Printf("%-22s %14s %14s\n", "replica pair / agents", "white-box", "black-box")
	for _, w := range wbRes {
		fmt.Printf("%-22s %14s\n", fmt.Sprintf("%s ~ %s", w.A, w.B), w.Content.Largest.Round(time.Millisecond))
	}
	for _, w := range conprobe.ContentDivergenceWindows(trace) {
		fmt.Printf("%-22s %14s %14s\n",
			fmt.Sprintf("agents %d-%d", w.Pair.A, w.Pair.B), "", w.Largest.Round(time.Millisecond))
	}
	fmt.Println("\n(the black-box estimate quantizes window edges to the 300ms read")
	fmt.Println(" period and misses divergence between an agent's reads, so it can")
	fmt.Println(" deviate from ground truth by up to one read period per edge)")
	return nil
}
