// Liveprobe: the live-measurement path. A simulated service is served
// over HTTP on the real clock, and the same agents / tests / checkers
// that drive the virtual-time campaigns probe it across the wire —
// including Cristian-style clock synchronization against the server's
// /time endpoint. This is the deployment shape the paper used against
// Google+, Blogger and Facebook, with the live service replaced by a
// local stand-in.
//
//	go run ./examples/liveprobe
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"conprobe"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A scaled-down weakly consistent profile so the live run finishes
	// in a couple of wall-clock seconds: replication lags tens to
	// hundreds of milliseconds, agents read every 40ms.
	profile := conprobe.GooglePlusProfile()
	profile.Name = "live-demo"
	profile.APIDelay = 2 * time.Millisecond
	profile.Store.PropagationBase = 80 * time.Millisecond
	profile.Store.PropagationJitter = 60 * time.Millisecond
	profile.Store.EpochJitter = 150 * time.Millisecond
	profile.Store.FastEpochProb = 0
	profile.Store.NormalizeAfter = 150 * time.Millisecond

	// The topology object is only consulted for fault injection in the
	// live path (the real network supplies actual latencies).
	net := conprobe.DefaultTopology(1)
	var clock conprobe.RealRuntime
	svc, err := conprobe.NewSimulatedService(clock, net, profile, 1)
	if err != nil {
		return err
	}

	server := httptest.NewServer(conprobe.NewHTTPServer(svc, conprobe.HTTPServerConfig{}))
	defer server.Close()
	fmt.Printf("serving %s at %s\n", profile.Name, server.URL)

	// Agents probe over HTTP. Their local clocks are deliberately
	// skewed; the coordinator re-estimates the deltas before each test
	// via GET /time.
	client, err := conprobe.NewHTTPClient(server.URL, profile.Name, server.Client())
	if err != nil {
		return err
	}
	// Agent skew is zero here because this demo serves /time from the
	// service process; in a real deployment each agent machine exposes
	// its own /time endpoint and the estimated deltas recover its skew.
	agents := conprobe.DefaultAgents(clock, 0, 2)
	cfg := conprobe.CampaignConfig{
		Agents:           agents,
		Coordinator:      conprobe.Virginia,
		ClockSyncSamples: 5,
		StartDelay:       100 * time.Millisecond,
		Test1: conprobe.TestConfig{
			ReadPeriod: 40 * time.Millisecond,
			WriteGap:   20 * time.Millisecond,
			Timeout:    5 * time.Second,
			Count:      1,
		},
		Test2: conprobe.TestConfig{
			ReadPeriod:    40 * time.Millisecond,
			FastReads:     10,
			SlowPeriod:    120 * time.Millisecond,
			ReadsPerAgent: 15,
			Count:         1,
		},
		ProbeFor: func(conprobe.Agent) conprobe.ClockProbe {
			// Every agent reads the server's clock over HTTP.
			return client.TimeProbe()
		},
	}
	runner, err := conprobe.NewRunner(clock, net, client, cfg)
	if err != nil {
		return err
	}

	fmt.Println("running one Test 1 and one Test 2 over HTTP in real time...")
	res, err := runner.RunCampaign(context.Background())
	if err != nil {
		return err
	}
	for _, tr := range res.Traces {
		vs := conprobe.CheckTest(tr)
		fmt.Printf("  %s: %d writes, %d reads, %d anomaly observations\n",
			tr.Kind, len(tr.Writes), len(tr.Reads), len(vs))
		for ag, delta := range tr.Deltas {
			fmt.Printf("    agent %d clock delta %v (±%v)\n",
				ag, delta.Round(time.Millisecond), tr.Uncertainty[ag].Round(time.Millisecond))
		}
	}
	return nil
}
