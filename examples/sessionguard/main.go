// Sessionguard: demonstrate the client-side session-guarantee masking
// the paper's discussion proposes (Section V). The same Facebook Feed
// campaign runs twice — raw, and with every agent wrapped in the session
// middleware — and the anomaly counts are compared.
//
//	go run ./examples/sessionguard
package main

import (
	"context"
	"fmt"
	"log"

	"conprobe"
)

func main() {
	fmt.Println("facebook feed, 20 Test 1 instances, raw vs session-masked")
	fmt.Printf("%-22s %8s %8s\n", "anomaly", "raw", "masked")

	raw := campaign(nil)
	masked := campaign(func(ag conprobe.Agent, svc conprobe.Service) conprobe.Service {
		// The middleware needs only a session id (the agent label) and
		// per-session caching — exactly the paper's recipe.
		return conprobe.WrapSession(svc, ag.Label(), conprobe.MaskAll)
	})

	type checker struct {
		name  string
		check func(*conprobe.TestTrace) []conprobe.Violation
	}
	for _, c := range []checker{
		{"read your writes", conprobe.CheckReadYourWrites},
		{"monotonic reads", conprobe.CheckMonotonicReads},
		{"monotonic writes", conprobe.CheckMonotonicWrites},
		{"writes follows reads", conprobe.CheckWritesFollowsReads},
	} {
		fmt.Printf("%-22s %8d %8d\n", c.name, count(raw, c.check), count(masked, c.check))
	}
	fmt.Println("\n(read-your-writes, monotonic-reads and writes-follows-reads go")
	fmt.Println(" to zero — the last via writer-declared dependencies and delayed")
	fmt.Println(" delivery, the paper's suggestion; monotonic writes keeps the")
	fmt.Println(" residual a reader cannot fix for other clients' writes)")
}

func campaign(wrap conprobe.ClientWrapper) []*conprobe.TestTrace {
	res, err := conprobe.Run(context.Background(), conprobe.Options{
		Workload: conprobe.Workload{
			Service:    conprobe.ServiceFBFeed,
			Test1Count: 20,
			Seed:       11,
			Wrap:       wrap,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Traces
}

func count(traces []*conprobe.TestTrace, check func(*conprobe.TestTrace) []conprobe.Violation) int {
	n := 0
	for _, tr := range traces {
		n += len(check(tr))
	}
	return n
}
