// Quickstart: run a small measurement campaign against the simulated
// Google+ profile and print the paper-style analysis.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"conprobe"
)

func main() {
	// A campaign of 50 instances of each test takes a few hundred
	// milliseconds of wall-clock time: the world runs in virtual time.
	res, err := conprobe.Run(context.Background(), conprobe.Options{
		Workload: conprobe.Workload{
			Service:    conprobe.ServiceGooglePlus,
			Test1Count: 50,
			Test2Count: 50,
			Seed:       1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every trace is just data; the checkers are pure functions.
	violations := 0
	for _, tr := range res.Traces {
		violations += len(conprobe.CheckTest(tr))
	}
	fmt.Printf("campaign: %d tests, %d anomaly observations\n\n", len(res.Traces), violations)

	// The analysis was aggregated while the campaign ran; render it.
	if err := conprobe.WriteReport(os.Stdout, res.Report); err != nil {
		log.Fatal(err)
	}
}
