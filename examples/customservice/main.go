// Customservice: probing your own service model. Builds a bespoke
// topology (five regions, two data centers on different continents), a
// custom weakly consistent profile on top of it, and runs the paper's
// methodology against it — the workflow a downstream user follows to ask
// "what would these tests say about *my* system?".
//
//	go run ./examples/customservice
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"conprobe"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := conprobe.NewSim(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))

	// A custom topology: the built-in EC2 sites plus two bespoke data
	// centers with our own link latencies.
	const (
		dcSaoPaulo = conprobe.Site("dc-saopaulo")
		dcSydney   = conprobe.Site("dc-sydney")
	)
	net := conprobe.DefaultTopology(11)
	net.SetRTT(conprobe.Oregon, dcSaoPaulo, 180*time.Millisecond)
	net.SetRTT(conprobe.Tokyo, dcSaoPaulo, 270*time.Millisecond)
	net.SetRTT(conprobe.Ireland, dcSaoPaulo, 190*time.Millisecond)
	net.SetRTT(conprobe.Oregon, dcSydney, 140*time.Millisecond)
	net.SetRTT(conprobe.Tokyo, dcSydney, 105*time.Millisecond)
	net.SetRTT(conprobe.Ireland, dcSydney, 280*time.Millisecond)
	net.SetRTT(dcSaoPaulo, dcSydney, 310*time.Millisecond)

	// A custom profile: southern-hemisphere replication with second-scale
	// anti-entropy and coarse timestamps.
	profile := conprobe.Profile{
		Name: "austral",
		Store: conprobe.StoreConfig{
			Mode:              conprobe.StoreEventual,
			Sites:             []conprobe.Site{dcSaoPaulo, dcSydney},
			PropagationBase:   900 * time.Millisecond,
			PropagationJitter: 600 * time.Millisecond,
		},
		Routing: map[conprobe.Site]conprobe.Site{
			conprobe.Oregon:  dcSydney,
			conprobe.Tokyo:   dcSydney,
			conprobe.Ireland: dcSaoPaulo,
		},
		APIDelay: 120 * time.Millisecond,
	}
	svc, err := conprobe.NewSimulatedService(sim, net, profile, 11)
	if err != nil {
		return err
	}

	// A bespoke campaign: 40 instances of each test, faster cadence than
	// the paper's (our pretend rate limits are generous).
	agents := conprobe.DefaultAgents(sim, 2*time.Second, 12)
	cfg := conprobe.CampaignConfig{
		Agents:      agents,
		Coordinator: conprobe.Virginia,
		Test1: conprobe.TestConfig{
			ReadPeriod: 200 * time.Millisecond,
			WriteGap:   150 * time.Millisecond,
			Timeout:    60 * time.Second,
			Gap:        30 * time.Second,
			Count:      40,
		},
		Test2: conprobe.TestConfig{
			ReadPeriod:    200 * time.Millisecond,
			FastReads:     15,
			SlowPeriod:    time.Second,
			ReadsPerAgent: 30,
			Gap:           30 * time.Second,
			Count:         40,
		},
	}
	runner, err := conprobe.NewRunner(sim, net, svc, cfg)
	if err != nil {
		return err
	}

	var (
		res    *conprobe.CampaignResult
		runErr error
	)
	sim.Go(func() { res, runErr = runner.RunCampaign(context.Background()) })
	sim.Wait()
	if runErr != nil {
		return runErr
	}

	fmt.Printf("probed %q: %d tests\n\n", profile.Name, len(res.Traces))
	rep := conprobe.Analyze(res.Service, res.Traces)
	return conprobe.WriteReport(os.Stdout, rep)
}
