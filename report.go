package conprobe

import (
	"io"

	"conprobe/internal/report"
)

// CDF is an empirical cumulative distribution over durations, used for
// the divergence-window figures.
type CDF = report.CDF

// NewCDF builds a CDF from samples.
var NewCDF = report.NewCDF

// WriteReport renders the paper-style analysis of one service: anomaly
// prevalence (Figure 3), per-test distributions and agent correlation
// (Figures 4-7), and pairwise divergence with window CDFs (Figures 8-10).
func WriteReport(w io.Writer, rep *Report) error {
	return report.WriteReport(w, rep)
}
