// Package conprobe measures the client-observable consistency of online
// services, reproducing "Characterizing the Consistency of Online
// Services (Practical Experience Report)" (Freitas, Leitão, Preguiça,
// Rodrigues — DSN 2016).
//
// The library has three layers:
//
//   - Checkers (pure functions over traces): detectors for the six
//     anomalies of the paper's Section III — Read Your Writes, Monotonic
//     Writes, Monotonic Reads, Writes Follows Reads, Content Divergence
//     and Order Divergence — plus the content/order divergence-window
//     metrics computed on a clock-delta-corrected timeline.
//
//   - Probing (Section IV): geo-distributed agents running the two
//     black-box test protocols against any Service, with Cristian-style
//     clock synchronization before every test. Services can be the
//     built-in simulated profiles (Google+, Blogger, Facebook Feed,
//     Facebook Group) driven in virtual time, or a live HTTP API probed
//     in real time.
//
//   - Analysis (Section V): aggregation of campaign traces into the
//     paper's figures — anomaly prevalence, per-test distributions,
//     agent-combination correlation, pairwise divergence and window
//     CDFs — with text rendering.
//
// Quick start:
//
//	res, err := conprobe.Run(ctx, conprobe.Options{
//	    Workload: conprobe.Workload{
//	        Service:    conprobe.ServiceGooglePlus,
//	        Test1Count: 100,
//	        Test2Count: 100,
//	        Seed:       1,
//	    },
//	})
//	if err != nil { ... }
//	conprobe.WriteReport(os.Stdout, res.Report)
package conprobe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"conprobe/internal/analysis"
	"conprobe/internal/chaos"
	"conprobe/internal/checkpoint"
	"conprobe/internal/core"
	"conprobe/internal/diskfault"
	"conprobe/internal/obs"
	"conprobe/internal/probe"
	"conprobe/internal/service"
	"conprobe/internal/session"
	"conprobe/internal/trace"
	"conprobe/internal/vtime"
)

// Trace model (Section IV data collection).
type (
	// AgentID identifies a measurement agent (1-based).
	AgentID = trace.AgentID
	// WriteID uniquely identifies a write (the paper's M1..M6).
	WriteID = trace.WriteID
	// TestKind distinguishes the two test protocols.
	TestKind = trace.TestKind
	// Write records one write operation.
	Write = trace.Write
	// Read records one read operation and what it observed.
	Read = trace.Read
	// TestTrace is the full log of one test instance.
	TestTrace = trace.TestTrace
	// TraceWriter streams traces as JSON Lines.
	TraceWriter = trace.Writer
	// TraceReader reads JSON Lines traces.
	TraceReader = trace.Reader
)

// The two test protocols.
const (
	Test1 = trace.Test1
	Test2 = trace.Test2
)

// NewTraceWriter streams traces to w as JSON Lines.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewTraceReader reads JSON Lines traces from r.
func NewTraceReader(r io.Reader) *TraceReader { return trace.NewReader(r) }

// Anomaly checkers (Section III).
type (
	// Anomaly enumerates the paper's six consistency anomalies.
	Anomaly = core.Anomaly
	// Violation is one detected anomaly occurrence.
	Violation = core.Violation
	// Pair is an unordered pair of agents.
	Pair = core.Pair
	// WindowResult summarizes one pair's divergence windows in one test.
	WindowResult = core.WindowResult
)

// The six anomalies.
const (
	ReadYourWrites     = core.ReadYourWrites
	MonotonicWrites    = core.MonotonicWrites
	MonotonicReads     = core.MonotonicReads
	WritesFollowsReads = core.WritesFollowsReads
	ContentDivergence  = core.ContentDivergence
	OrderDivergence    = core.OrderDivergence
)

// Checker entry points; each is a pure function over a trace.
var (
	// CheckTest runs every checker.
	CheckTest = core.CheckTest
	// CheckReadYourWrites detects Read Your Writes violations.
	CheckReadYourWrites = core.CheckReadYourWrites
	// CheckMonotonicWrites detects Monotonic Writes violations.
	CheckMonotonicWrites = core.CheckMonotonicWrites
	// CheckMonotonicReads detects Monotonic Reads violations.
	CheckMonotonicReads = core.CheckMonotonicReads
	// CheckWritesFollowsReads detects Writes Follows Reads violations.
	CheckWritesFollowsReads = core.CheckWritesFollowsReads
	// CheckContentDivergence detects Content Divergence between pairs.
	CheckContentDivergence = core.CheckContentDivergence
	// CheckOrderDivergence detects Order Divergence between pairs.
	CheckOrderDivergence = core.CheckOrderDivergence
	// ContentDivergenceWindows computes content divergence windows.
	ContentDivergenceWindows = core.ContentDivergenceWindows
	// OrderDivergenceWindows computes order divergence windows.
	OrderDivergenceWindows = core.OrderDivergenceWindows
	// AllAnomalies lists the six anomalies in definition order.
	AllAnomalies = core.AllAnomalies
)

// Services (Section V subjects).
type (
	// Service is the black-box API surface agents probe.
	Service = service.Service
	// Post is one message as seen through a service API.
	Post = service.Post
	// Profile declares a simulated service's behavior.
	Profile = service.Profile
	// Selection models interest-based read results (Facebook Feed).
	Selection = service.Selection
)

// Built-in profile names.
const (
	ServiceBlogger    = service.NameBlogger
	ServiceGooglePlus = service.NameGooglePlus
	ServiceFBFeed     = service.NameFBFeed
	ServiceFBGroup    = service.NameFBGroup
)

// Profile constructors and lookup.
var (
	// ProfileNames lists the built-in profiles in the paper's order.
	ProfileNames = service.ProfileNames
	// ProfileByName resolves a built-in profile.
	ProfileByName = service.ProfileByName
	// BloggerProfile models the Blogger API (strong consistency).
	BloggerProfile = service.Blogger
	// GooglePlusProfile models the Google+ moments API.
	GooglePlusProfile = service.GooglePlus
	// FBFeedProfile models the Facebook news feed API.
	FBFeedProfile = service.FBFeed
	// FBGroupProfile models the Facebook Group API.
	FBGroupProfile = service.FBGroup
)

// Probing (Section IV methodology).
type (
	// CampaignResult holds a campaign's traces.
	CampaignResult = probe.Result
	// Agent is one measurement client.
	Agent = probe.Agent
	// CampaignConfig describes a measurement campaign.
	CampaignConfig = probe.Config
	// TestConfig carries per-test parameters (Tables I and II).
	TestConfig = probe.TestConfig
	// Runner executes tests and campaigns.
	Runner = probe.Runner
	// ClientWrapper interposes on an agent's service handle.
	ClientWrapper = probe.ClientWrapper
)

// DefaultLanes is the default number of lanes Run partitions a campaign
// into.
const DefaultLanes = probe.DefaultLanes

// Observability. The obs package is the self-measurement layer: a
// dependency-free registry of atomic counters, gauges and histograms
// threaded through the campaign engine as a Scope. Metrics are observed,
// never fed back into scheduling, so enabling them cannot perturb the
// byte-identical-output-at-any-parallelism guarantee.
type (
	// MetricsRegistry holds named metrics and serves /metrics.
	MetricsRegistry = obs.Registry
	// MetricsScope registers metrics under a name prefix and label set.
	MetricsScope = obs.Scope
	// EngineStats is a deterministic-ordered snapshot of every series.
	EngineStats = obs.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry; derive a scope
// with its Scope method and pass it to Options.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Options parameterize Run, grouped by concern: Workload is the
// campaign itself (what to measure), Engine is how it executes,
// Resilience hardens the probing path, Durability journals it,
// Telemetry observes it, and Faults/Chaos script adverse conditions.
type Options struct {
	// Workload is the campaign definition: service, test mix, seed,
	// schedule shape. Service is the only required field.
	Workload Workload
	// Engine tunes the concurrent lane engine and its output plumbing.
	Engine Engine
	// Resilience wraps each agent's client in retry/breaker/deadline
	// middleware. The zero value leaves clients bare.
	Resilience Resilience
	// Durability checkpoints the campaign for crash-safe resume.
	Durability Durability
	// Telemetry observes the campaign without perturbing it.
	Telemetry Telemetry
	// Faults, when non-nil and enabled, wraps the simulated service in
	// the deterministic fault injector — a fault drill. A zero
	// Faults.Seed inherits the campaign Seed.
	Faults *FaultConfig
	// Chaos, when non-nil and non-empty, scripts partitions, outages,
	// clock steps and overload windows on the campaign timeline
	// (offsets relative to Workload.Start).
	Chaos *ChaosSchedule
	// Disks maps disk site names ("wal", "term", "snapshot", "store",
	// "checkpoint") to the storage-fault injectors Chaos diskfault
	// events arm. When Durability.Checkpoint is set and Disks has no
	// "checkpoint" entry but Durability.FS is an injector's FS, wire the
	// injector here yourself — Run does not infer it. Run does aim the
	// "checkpoint" site's faults at the journal's actual file name, so
	// any -checkpoint path works.
	Disks map[string]*DiskInjector
}

// Workload describes what campaign to run: the service under test, the
// test mix and every knob that is part of the campaign's deterministic
// identity. Two equal Workloads (with equal Engine.Lanes) produce
// byte-identical traces.
type Workload struct {
	// Service is the built-in profile name (ServiceBlogger, ...).
	Service string
	// Test1Count and Test2Count are how many instances of each test
	// protocol to run.
	Test1Count, Test2Count int
	// Seed drives every random choice (network jitter, clock skews,
	// service behavior); a fixed seed reproduces a campaign exactly.
	Seed int64
	// MaxSkew bounds the agents' random clock offsets (default 2s).
	MaxSkew time.Duration
	// Start is the virtual start time (default 2026-01-01T00:00Z). It
	// anchors the campaign epoch: chaos-schedule and fault-injection
	// window offsets are relative to it.
	Start time.Time
	// AlternateBlocks interleaves Test 1 and Test 2 blocks as the paper
	// did (0/1 = sequential).
	AlternateBlocks int
	// Rotate shifts the agents' locations cyclically by this many
	// positions (the paper's location-rotation control experiment).
	Rotate int
	// SyncSamples overrides the number of Cristian clock-sync probes
	// per agent per test (default 5).
	SyncSamples int
	// Profile, when non-nil, overrides the built-in profile looked up
	// by Service name (used by ablation studies).
	Profile *Profile
	// ConfigureNetwork, when set, mutates the default topology before
	// use (extra links, injected asymmetries).
	ConfigureNetwork func(*Network)
	// Wrap optionally interposes on each agent's service handle.
	Wrap ClientWrapper
}

// Engine tunes how the campaign executes: its lane partitioning, the
// worker parallelism, and where completed traces flow.
type Engine struct {
	// Lanes is the number of independent virtual worlds the campaign is
	// partitioned into (default DefaultLanes). The lane count is part of
	// the campaign's identity: changing it re-partitions the schedule and
	// yields different (equally valid) traces for the same Seed.
	Lanes int
	// Parallelism bounds how many lanes run concurrently (default
	// GOMAXPROCS). It is purely a throughput knob — any value produces
	// identical results for a fixed Seed and Lanes.
	Parallelism int
	// OnTrace, when set, receives every trace as its test completes,
	// serialized across lanes. A non-nil error cancels the campaign;
	// traces collected so far are still returned.
	OnTrace func(*TestTrace) error
	// Progress, when set, receives (completed, total) after every test,
	// serialized across lanes.
	Progress func(done, total int)
	// DiscardTraces stops the engine from retaining traces in the
	// returned Result; traces then flow only through OnTrace and the
	// streaming aggregation, bounding a long campaign's memory by the
	// lane, not the campaign, size.
	DiscardTraces bool
}

// Resilience hardens each agent's probing path.
type Resilience struct {
	// Retry, when non-nil, wraps each agent's client in the resilience
	// middleware with this policy. A zero Retry.Seed inherits the
	// campaign Seed.
	Retry *RetryPolicy
	// Breaker adds a per-agent circuit breaker to the resilience
	// middleware (implies Retry; a nil Retry uses the default policy).
	Breaker *BreakerConfig
	// OpDeadline bounds each operation's total time across retries.
	OpDeadline time.Duration
}

// Durability journals the campaign for crash-safe resume.
type Durability struct {
	// Checkpoint, when non-empty, journals the campaign to this file:
	// each completed test's trace (unless Engine.DiscardTraces), the
	// lane's progress and its streaming-analysis snapshot, checksummed
	// and compacted in place by atomic rename. A campaign killed at any
	// point resumes from the journal with Resume and produces output
	// byte-identical to an uninterrupted run.
	Checkpoint string
	// CheckpointEvery is the number of journal appends between
	// compactions (default checkpoint.DefaultRotateEvery).
	CheckpointEvery int
	// Resume continues the campaign journaled in Checkpoint instead of
	// starting fresh. The journal's campaign identity (service, seed,
	// lanes, counts, blocks, start) must match these Options exactly.
	// Resilience state (retry counters, breaker position) is journaled
	// per lane and rewound on resume, so campaigns with Breaker set
	// reproduce the uninterrupted run byte-identically too.
	Resume bool
	// FS, when non-nil, is the filesystem the checkpoint journal lives
	// on. Storage-fault drills pass a diskfault injector's FS; nil means
	// the real filesystem.
	FS diskfault.FS
}

// Telemetry observes the campaign. Metrics are write-only for the
// engine — nothing reads them back — so enabling them cannot perturb
// the byte-identical-output-at-any-parallelism guarantee.
type Telemetry struct {
	// Metrics, when non-nil, receives the campaign's telemetry — per-lane
	// engine counters, queue waits, resilience and fault-injection
	// activity — and makes RunResult.EngineStats a snapshot of the
	// scope's registry. Typically reg.Scope("conprobe") on a registry
	// from NewMetricsRegistry.
	Metrics *MetricsScope
	// EngineClock, when non-nil, replaces the wall clock the engine's
	// telemetry (queue waits, merge latency) is read from. Injecting a
	// virtual clock makes EngineStats byte-identical across runs and
	// parallelism levels; campaign traces are deterministic either way.
	EngineClock EngineClock
}

// ChaosSchedule scripts deterministic adverse conditions (partitions,
// outages, clock steps, overload windows) on the campaign timeline.
type ChaosSchedule = chaos.Schedule

// DiskInjector is a deterministic storage-fault injector; its FS()
// threads beneath a WAL, checkpoint journal or durable store, and
// chaos diskfault events arm faults on it.
type DiskInjector = diskfault.Injector

// NewDiskInjector returns a storage-fault injector reporting to sc
// (nil disables its metrics).
func NewDiskInjector(sc *MetricsScope) *DiskInjector { return diskfault.New(sc) }

// diskPaths points the "checkpoint" disk site at the journal's actual
// file name: the site table's generic "checkpoint" substring only
// matches operator paths that happen to contain the word, and a chaos
// diskfault(checkpoint, ...) that silently matches nothing is exactly
// the misdirected fault World.Disks exists to prevent.
func diskPaths(opts Options) map[string]string {
	if opts.Durability.Checkpoint == "" || opts.Disks["checkpoint"] == nil {
		return nil
	}
	return map[string]string{"checkpoint": filepath.Base(opts.Durability.Checkpoint)}
}

// EngineClock is the time source interface the engine reads telemetry
// from; vtime.Sim and vtime.Real both satisfy it.
type EngineClock = vtime.Clock

// NewVirtualClock returns a virtual-time EngineClock pinned at start. It
// never advances on its own, so engine durations read from it are
// exactly zero — the deterministic choice for metrics snapshots that
// must be comparable across runs.
func NewVirtualClock(start time.Time) EngineClock { return vtime.NewSim(start) }

// RunResult is the outcome of Run: the merged campaign traces plus the
// analysis report, accumulated incrementally while the campaign ran (one
// lock-free aggregator per lane, merged in lane order at the end).
type RunResult struct {
	*CampaignResult
	// Report is the streaming analysis of every collected trace. It is
	// available even with Options.DiscardTraces set, which is how an
	// arbitrarily long campaign runs in bounded memory.
	Report *Report
	// EngineStats is the final snapshot of Options.Metrics' registry:
	// every engine, resilience, fault-injection and aggregation series
	// the campaign produced, in deterministic order. Nil when no Metrics
	// scope was supplied.
	EngineStats EngineStats
	// Warnings reports conditions the campaign survived but the caller
	// should know about — e.g. a checkpoint journal disabled mid-run by a
	// storage failure (the campaign finished; crash-resumability was
	// lost). Empty for a clean run.
	Warnings []string
}

// Run executes a simulated measurement campaign partitioned across
// concurrent lanes and streams its analysis. It is the preferred entry
// point: it honors ctx (a cancelled campaign stops mid-test and returns
// the traces collected so far alongside the error), scales with cores
// via Parallelism, and aggregates anomaly statistics incrementally so
// the full trace set never has to be held in memory (set
// Options.DiscardTraces to drop it).
//
// Determinism: for a fixed Workload and Engine.Lanes, Run's output is
// identical at any Engine.Parallelism. The lanes' worlds draw from
// seeds derived per lane, so the lane count is part of the campaign's
// identity.
func Run(ctx context.Context, opts Options) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	w := opts.Workload
	lanes := opts.Engine.Lanes
	if lanes <= 0 {
		lanes = DefaultLanes
	}
	if opts.Durability.Resume && opts.Durability.Checkpoint == "" {
		return nil, errors.New("conprobe: Durability.Resume requires a Checkpoint path")
	}
	sim := probe.SimulateOptions{
		Service:          w.Service,
		Test1Count:       w.Test1Count,
		Test2Count:       w.Test2Count,
		Seed:             w.Seed,
		MaxSkew:          w.MaxSkew,
		Start:            w.Start,
		AlternateBlocks:  w.AlternateBlocks,
		Rotate:           w.Rotate,
		SyncSamples:      w.SyncSamples,
		Profile:          w.Profile,
		ConfigureNetwork: w.ConfigureNetwork,
		Wrap:             w.Wrap,
		Faults:           opts.Faults,
		Chaos:            opts.Chaos,
		Disks:            opts.Disks,
		DiskPaths:        diskPaths(opts),
		Retry:            opts.Resilience.Retry,
		Breaker:          opts.Resilience.Breaker,
		OpDeadline:       opts.Resilience.OpDeadline,
		Progress:         opts.Engine.Progress,
		DiscardTraces:    opts.Engine.DiscardTraces,
		Metrics:          opts.Telemetry.Metrics,
	}
	// One aggregator per lane: LaneSink serializes calls within a lane,
	// so no aggregator is ever touched concurrently and no lock is
	// needed on the hot path.
	aggs := make([]*analysis.Aggregator, lanes)
	for i := range aggs {
		aggs[i] = analysis.NewAggregator(w.Service)
	}
	eng := probe.EngineOptions{
		Lanes:       lanes,
		Parallelism: opts.Engine.Parallelism,
		OnTrace:     opts.Engine.OnTrace,
		Clock:       opts.Telemetry.EngineClock,
		LaneSink: func(lane int, tr *trace.TestTrace) error {
			aggs[lane].Add(tr)
			return nil
		},
	}
	// Traces completed before a resume, recovered from the journal; the
	// resumed lanes re-run nothing, so these are merged into the final
	// Result as-is.
	var journaled []*TestTrace
	var ckw *checkpoint.Writer
	if opts.Durability.Checkpoint != "" {
		start := w.Start
		if start.IsZero() {
			start = probe.DefaultStart
		}
		meta := checkpoint.Meta{
			Service:         w.Service,
			Seed:            w.Seed,
			Lanes:           lanes,
			Test1Count:      w.Test1Count,
			Test2Count:      w.Test2Count,
			AlternateBlocks: w.AlternateBlocks,
			Start:           start,
		}
		ccfg := checkpoint.Config{
			KeepTraces:  !opts.Engine.DiscardTraces,
			RotateEvery: opts.Durability.CheckpointEvery,
			FS:          opts.Durability.FS,
		}
		var err error
		if opts.Durability.Resume {
			st, lerr := checkpoint.LoadFS(opts.Durability.FS, opts.Durability.Checkpoint)
			if lerr != nil {
				return nil, lerr
			}
			if !st.Meta.Matches(meta) {
				return nil, fmt.Errorf("conprobe: checkpoint %s was written by a different campaign (journal %+v, options %+v)",
					opts.Durability.Checkpoint, st.Meta, meta)
			}
			resume := make([]probe.LaneResume, lanes)
			for l := 0; l < lanes; l++ {
				resume[l] = probe.LaneResume{Done: st.Done(l)}
				if lr := st.Lanes[l]; lr != nil {
					resume[l].At = lr.Next
					resume[l].Resilience = lr.Resilience
				}
				if aggs[l], err = st.Aggregator(l); err != nil {
					return nil, err
				}
			}
			eng.Resume = resume
			journaled = st.CompletedTraces()
			ckw, err = checkpoint.Continue(opts.Durability.Checkpoint, st, ccfg)
		} else {
			ckw, err = checkpoint.Create(opts.Durability.Checkpoint, meta, ccfg)
		}
		if err != nil {
			return nil, err
		}
		defer ckw.Close()
		eng.LaneCheckpoint = ckw.Append
	}
	for i := range aggs {
		aggs[i].Instrument(sim.Metrics.Sub("aggregator").With("lane", strconv.Itoa(i)))
	}
	res, err := probe.SimulateConcurrent(ctx, sim, eng)
	out := &RunResult{CampaignResult: res}
	if ckw != nil {
		if derr := ckw.Degraded(); derr != nil {
			out.Warnings = append(out.Warnings,
				fmt.Sprintf("checkpoint journaling disabled by a storage failure; the campaign finished but cannot be resumed from %s: %v",
					opts.Durability.Checkpoint, derr))
		}
	}
	if res != nil {
		if len(journaled) > 0 {
			res.Traces = append(journaled, res.Traces...)
			sort.Slice(res.Traces, func(i, j int) bool {
				return res.Traces[i].TestID < res.Traces[j].TestID
			})
		}
		out.Report = analysis.MergeAggregators(res.Service, aggs)
	}
	out.EngineStats = sim.Metrics.Registry().Snapshot()
	return out, err
}

var (
	// CampaignFor returns a service's Tables I/II campaign parameters.
	CampaignFor = probe.CampaignFor
	// PaperTestCounts returns the paper's per-service test counts.
	PaperTestCounts = probe.PaperTestCounts
	// DefaultAgents builds the Oregon/Tokyo/Ireland agent deployment.
	DefaultAgents = probe.DefaultAgents
	// NewRunner builds a campaign runner over any Service.
	NewRunner = probe.NewRunner
)

// Analysis and reporting (Section V).
type (
	// Report is the complete analysis of a campaign.
	Report = analysis.Report
	// SessionStats describes one session-guarantee anomaly.
	SessionStats = analysis.SessionStats
	// DivergenceStats describes one divergence anomaly.
	DivergenceStats = analysis.DivergenceStats
	// PairStats describes one agent pair's divergence behavior.
	PairStats = analysis.PairStats
)

var (
	// Analyze aggregates checker output over campaign traces.
	Analyze = analysis.Analyze
	// Histogram buckets per-test violation counts.
	Histogram = analysis.Histogram
)

// Session-guarantee masking (Section V discussion).
type (
	// Guarantees selects which session guarantees to enforce.
	Guarantees = session.Guarantees
	// SessionClient is a per-agent session layer over a Service.
	SessionClient = session.Client
)

// Maskable guarantees.
const (
	MaskReadYourWrites     = session.ReadYourWrites
	MaskMonotonicReads     = session.MonotonicReads
	MaskMonotonicWrites    = session.MonotonicWrites
	MaskWritesFollowsReads = session.WritesFollowsReads
	MaskAll                = session.All
)

// WrapSession builds a session Client enforcing g for an agent.
var WrapSession = session.Wrap
