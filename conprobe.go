// Package conprobe measures the client-observable consistency of online
// services, reproducing "Characterizing the Consistency of Online
// Services (Practical Experience Report)" (Freitas, Leitão, Preguiça,
// Rodrigues — DSN 2016).
//
// The library has three layers:
//
//   - Checkers (pure functions over traces): detectors for the six
//     anomalies of the paper's Section III — Read Your Writes, Monotonic
//     Writes, Monotonic Reads, Writes Follows Reads, Content Divergence
//     and Order Divergence — plus the content/order divergence-window
//     metrics computed on a clock-delta-corrected timeline.
//
//   - Probing (Section IV): geo-distributed agents running the two
//     black-box test protocols against any Service, with Cristian-style
//     clock synchronization before every test. Services can be the
//     built-in simulated profiles (Google+, Blogger, Facebook Feed,
//     Facebook Group) driven in virtual time, or a live HTTP API probed
//     in real time.
//
//   - Analysis (Section V): aggregation of campaign traces into the
//     paper's figures — anomaly prevalence, per-test distributions,
//     agent-combination correlation, pairwise divergence and window
//     CDFs — with text rendering.
//
// Quick start:
//
//	res, err := conprobe.Simulate(conprobe.SimulateOptions{
//	    Service:    conprobe.ServiceGooglePlus,
//	    Test1Count: 100,
//	    Test2Count: 100,
//	    Seed:       1,
//	})
//	if err != nil { ... }
//	rep := conprobe.Analyze(res.Service, res.Traces)
//	conprobe.WriteReport(os.Stdout, rep)
package conprobe

import (
	"io"

	"conprobe/internal/analysis"
	"conprobe/internal/core"
	"conprobe/internal/probe"
	"conprobe/internal/service"
	"conprobe/internal/session"
	"conprobe/internal/trace"
)

// Trace model (Section IV data collection).
type (
	// AgentID identifies a measurement agent (1-based).
	AgentID = trace.AgentID
	// WriteID uniquely identifies a write (the paper's M1..M6).
	WriteID = trace.WriteID
	// TestKind distinguishes the two test protocols.
	TestKind = trace.TestKind
	// Write records one write operation.
	Write = trace.Write
	// Read records one read operation and what it observed.
	Read = trace.Read
	// TestTrace is the full log of one test instance.
	TestTrace = trace.TestTrace
	// TraceWriter streams traces as JSON Lines.
	TraceWriter = trace.Writer
	// TraceReader reads JSON Lines traces.
	TraceReader = trace.Reader
)

// The two test protocols.
const (
	Test1 = trace.Test1
	Test2 = trace.Test2
)

// NewTraceWriter streams traces to w as JSON Lines.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewTraceReader reads JSON Lines traces from r.
func NewTraceReader(r io.Reader) *TraceReader { return trace.NewReader(r) }

// Anomaly checkers (Section III).
type (
	// Anomaly enumerates the paper's six consistency anomalies.
	Anomaly = core.Anomaly
	// Violation is one detected anomaly occurrence.
	Violation = core.Violation
	// Pair is an unordered pair of agents.
	Pair = core.Pair
	// WindowResult summarizes one pair's divergence windows in one test.
	WindowResult = core.WindowResult
)

// The six anomalies.
const (
	ReadYourWrites     = core.ReadYourWrites
	MonotonicWrites    = core.MonotonicWrites
	MonotonicReads     = core.MonotonicReads
	WritesFollowsReads = core.WritesFollowsReads
	ContentDivergence  = core.ContentDivergence
	OrderDivergence    = core.OrderDivergence
)

// Checker entry points; each is a pure function over a trace.
var (
	// CheckTest runs every checker.
	CheckTest = core.CheckTest
	// CheckReadYourWrites detects Read Your Writes violations.
	CheckReadYourWrites = core.CheckReadYourWrites
	// CheckMonotonicWrites detects Monotonic Writes violations.
	CheckMonotonicWrites = core.CheckMonotonicWrites
	// CheckMonotonicReads detects Monotonic Reads violations.
	CheckMonotonicReads = core.CheckMonotonicReads
	// CheckWritesFollowsReads detects Writes Follows Reads violations.
	CheckWritesFollowsReads = core.CheckWritesFollowsReads
	// CheckContentDivergence detects Content Divergence between pairs.
	CheckContentDivergence = core.CheckContentDivergence
	// CheckOrderDivergence detects Order Divergence between pairs.
	CheckOrderDivergence = core.CheckOrderDivergence
	// ContentDivergenceWindows computes content divergence windows.
	ContentDivergenceWindows = core.ContentDivergenceWindows
	// OrderDivergenceWindows computes order divergence windows.
	OrderDivergenceWindows = core.OrderDivergenceWindows
	// AllAnomalies lists the six anomalies in definition order.
	AllAnomalies = core.AllAnomalies
)

// Services (Section V subjects).
type (
	// Service is the black-box API surface agents probe.
	Service = service.Service
	// Post is one message as seen through a service API.
	Post = service.Post
	// Profile declares a simulated service's behavior.
	Profile = service.Profile
	// Selection models interest-based read results (Facebook Feed).
	Selection = service.Selection
)

// Built-in profile names.
const (
	ServiceBlogger    = service.NameBlogger
	ServiceGooglePlus = service.NameGooglePlus
	ServiceFBFeed     = service.NameFBFeed
	ServiceFBGroup    = service.NameFBGroup
)

// Profile constructors and lookup.
var (
	// ProfileNames lists the built-in profiles in the paper's order.
	ProfileNames = service.ProfileNames
	// ProfileByName resolves a built-in profile.
	ProfileByName = service.ProfileByName
	// BloggerProfile models the Blogger API (strong consistency).
	BloggerProfile = service.Blogger
	// GooglePlusProfile models the Google+ moments API.
	GooglePlusProfile = service.GooglePlus
	// FBFeedProfile models the Facebook news feed API.
	FBFeedProfile = service.FBFeed
	// FBGroupProfile models the Facebook Group API.
	FBGroupProfile = service.FBGroup
)

// Probing (Section IV methodology).
type (
	// SimulateOptions parameterize a fully simulated campaign.
	SimulateOptions = probe.SimulateOptions
	// CampaignResult holds a campaign's traces.
	CampaignResult = probe.Result
	// Agent is one measurement client.
	Agent = probe.Agent
	// CampaignConfig describes a measurement campaign.
	CampaignConfig = probe.Config
	// TestConfig carries per-test parameters (Tables I and II).
	TestConfig = probe.TestConfig
	// Runner executes tests and campaigns.
	Runner = probe.Runner
	// ClientWrapper interposes on an agent's service handle.
	ClientWrapper = probe.ClientWrapper
)

var (
	// Simulate runs a complete virtual-time measurement campaign.
	Simulate = probe.Simulate
	// CampaignFor returns a service's Tables I/II campaign parameters.
	CampaignFor = probe.CampaignFor
	// PaperTestCounts returns the paper's per-service test counts.
	PaperTestCounts = probe.PaperTestCounts
	// DefaultAgents builds the Oregon/Tokyo/Ireland agent deployment.
	DefaultAgents = probe.DefaultAgents
	// NewRunner builds a campaign runner over any Service.
	NewRunner = probe.NewRunner
)

// Analysis and reporting (Section V).
type (
	// Report is the complete analysis of a campaign.
	Report = analysis.Report
	// SessionStats describes one session-guarantee anomaly.
	SessionStats = analysis.SessionStats
	// DivergenceStats describes one divergence anomaly.
	DivergenceStats = analysis.DivergenceStats
	// PairStats describes one agent pair's divergence behavior.
	PairStats = analysis.PairStats
)

var (
	// Analyze aggregates checker output over campaign traces.
	Analyze = analysis.Analyze
	// Histogram buckets per-test violation counts.
	Histogram = analysis.Histogram
)

// Session-guarantee masking (Section V discussion).
type (
	// Guarantees selects which session guarantees to enforce.
	Guarantees = session.Guarantees
	// SessionClient is a per-agent session layer over a Service.
	SessionClient = session.Client
)

// Maskable guarantees.
const (
	MaskReadYourWrites     = session.ReadYourWrites
	MaskMonotonicReads     = session.MonotonicReads
	MaskMonotonicWrites    = session.MonotonicWrites
	MaskWritesFollowsReads = session.WritesFollowsReads
	MaskAll                = session.All
)

// WrapSession builds a session Client enforcing g for an agent.
var WrapSession = session.Wrap
