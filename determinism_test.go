package conprobe_test

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"conprobe"
)

// metricsOpts is the determinism campaign: a fixed partition (Lanes=8)
// probed at varying parallelism with the full telemetry stack enabled.
func metricsOpts(par int, sc *conprobe.MetricsScope) conprobe.Options {
	return conprobe.Options{
		Workload: conprobe.Workload{
			Service:    conprobe.ServiceFBFeed,
			Test1Count: 6,
			Test2Count: 6,
			Seed:       42,
		},
		Engine: conprobe.Engine{
			Lanes:       8,
			Parallelism: par,
		},
		Telemetry: conprobe.Telemetry{Metrics: sc},
	}
}

// renderRun serializes a campaign the two ways an operator consumes it:
// the merged JSONL trace stream and the rendered text report.
func renderRun(t *testing.T, res *conprobe.RunResult) (traces, report []byte) {
	t.Helper()
	var tb bytes.Buffer
	w := conprobe.NewTraceWriter(&tb)
	for _, tr := range res.Traces {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var rb bytes.Buffer
	if err := conprobe.WriteReport(&rb, res.Report); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), rb.Bytes()
}

// TestRunDeterminismWithMetricsEnabled pins the observability layer's
// core contract: instrumenting a campaign must not perturb it. For a
// fixed Seed and Lanes, both the merged JSONL trace stream and the
// final rendered Report are byte-identical at parallelism 1, 2 and 8,
// with a live metrics registry attached to every layer.
func TestRunDeterminismWithMetricsEnabled(t *testing.T) {
	var wantTraces, wantReport []byte
	for _, par := range []int{1, 2, 8} {
		reg := conprobe.NewMetricsRegistry()
		res, err := conprobe.Run(context.Background(), metricsOpts(par, reg.Scope("conprobe")))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		traces, report := renderRun(t, res)
		if wantTraces == nil {
			wantTraces, wantReport = traces, report
			continue
		}
		if !bytes.Equal(traces, wantTraces) {
			t.Errorf("parallelism %d: trace stream differs from parallelism 1", par)
		}
		if !bytes.Equal(report, wantReport) {
			t.Errorf("parallelism %d: rendered report differs from parallelism 1", par)
		}
	}
}

// TestRunEngineStats verifies the snapshot returned alongside the
// campaign: per-lane engine counters exist, cover every lane, and sum
// to the campaign's test count regardless of parallelism.
func TestRunEngineStats(t *testing.T) {
	reg := conprobe.NewMetricsRegistry()
	res, err := conprobe.Run(context.Background(), metricsOpts(2, reg.Scope("conprobe")))
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineStats == nil {
		t.Fatal("no EngineStats with a Metrics scope set")
	}
	started, lanes := 0.0, 0
	for _, p := range res.EngineStats {
		if strings.HasPrefix(p.Name, "conprobe_engine_tests_started_total{") {
			started += p.Value
			lanes++
		}
	}
	if lanes != 8 {
		t.Errorf("tests_started_total covers %d lanes, want 8", lanes)
	}
	if started != 12 {
		t.Errorf("tests_started_total sums to %v, want 12", started)
	}
	// The snapshot is the registry's: the two must agree series for
	// series.
	var a, b bytes.Buffer
	if err := res.EngineStats.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("EngineStats disagrees with a direct registry snapshot")
	}
}

// TestRunEngineStatsDeterministicUnderVirtualClock pins the fix for
// the engine's wall-clock leak: with a virtual clock injected for
// telemetry, the full metrics snapshot — including the queue-wait
// histogram and merge-latency gauge that used to read time.Now — is
// byte-identical across parallelism 1, 2 and 8.
func TestRunEngineStatsDeterministicUnderVirtualClock(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var want []byte
	for _, par := range []int{1, 2, 8} {
		reg := conprobe.NewMetricsRegistry()
		opts := metricsOpts(par, reg.Scope("conprobe"))
		opts.Telemetry.EngineClock = conprobe.NewVirtualClock(start)
		if _, err := conprobe.Run(context.Background(), opts); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		// The parallelism gauge legitimately varies with the knob; mask
		// it so the comparison covers every other series.
		snap := strings.ReplaceAll(buf.String(),
			`"conprobe_engine_parallelism": `+strconv.Itoa(par), `"conprobe_engine_parallelism": 0`)
		if want == nil {
			want = []byte(snap)
			continue
		}
		if snap != string(want) {
			t.Errorf("parallelism %d: metrics snapshot differs from parallelism 1:\n%s\nwant:\n%s", par, snap, want)
		}
	}
}

// TestRunDeterminismAcrossShardCounts pins the store-sharding contract:
// the lock-stripe count is a throughput knob, never a behavior knob.
// Campaign traces and the rendered report are byte-identical whether
// each lane's replicated store runs 1, 4 or 16 shards.
func TestRunDeterminismAcrossShardCounts(t *testing.T) {
	var wantTraces, wantReport []byte
	for _, shards := range []int{1, 4, 16} {
		prof := conprobe.FBFeedProfile()
		prof.Store.Shards = shards
		opts := metricsOpts(2, nil)
		opts.Workload.Profile = &prof
		res, err := conprobe.Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		traces, report := renderRun(t, res)
		if wantTraces == nil {
			wantTraces, wantReport = traces, report
			continue
		}
		if !bytes.Equal(traces, wantTraces) {
			t.Errorf("shards %d: trace stream differs from shards 1", shards)
		}
		if !bytes.Equal(report, wantReport) {
			t.Errorf("shards %d: rendered report differs from shards 1", shards)
		}
	}
}

// TestRunWithoutMetricsHasNoStats pins the nil path: no scope, no
// snapshot, and the campaign output is identical to the instrumented
// one.
func TestRunWithoutMetricsHasNoStats(t *testing.T) {
	bare, err := conprobe.Run(context.Background(), metricsOpts(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if bare.EngineStats != nil {
		t.Errorf("EngineStats without a scope: %v", bare.EngineStats)
	}
	reg := conprobe.NewMetricsRegistry()
	inst, err := conprobe.Run(context.Background(), metricsOpts(2, reg.Scope("conprobe")))
	if err != nil {
		t.Fatal(err)
	}
	bt, br := renderRun(t, bare)
	it, ir := renderRun(t, inst)
	if !bytes.Equal(bt, it) || !bytes.Equal(br, ir) {
		t.Error("enabling metrics changed the campaign output")
	}
}
