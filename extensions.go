package conprobe

import (
	"time"

	"conprobe/internal/analysis"
	"conprobe/internal/core"
	"conprobe/internal/probe"
	"conprobe/internal/profilecfg"
	"conprobe/internal/stats"
	"conprobe/internal/store"
	"conprobe/internal/vtime"
	"conprobe/internal/whitebox"
)

// Extensions beyond the paper's published evaluation: white-box
// monitoring (its stated future work), visibility-latency (staleness)
// analysis, the location-rotation control experiment, and the
// statistical toolkit used for paper-vs-measured comparisons.

type (
	// StreamChecker detects anomalies online as operations complete
	// (powers cmd/conwatch).
	StreamChecker = core.Stream
	// CampaignComparison quantifies how two campaigns differ.
	CampaignComparison = analysis.Comparison
	// PrevalenceDelta compares one anomaly's prevalence across
	// campaigns.
	PrevalenceDelta = analysis.PrevalenceDelta
	// WhiteboxMonitor samples replica logs directly, yielding
	// ground-truth divergence windows (the paper's future-work
	// extension).
	WhiteboxMonitor = whitebox.Monitor
	// WhiteboxPairWindows is a ground-truth divergence summary for one
	// replica pair.
	WhiteboxPairWindows = whitebox.PairWindows
	// WhiteboxWindowSummary aggregates ground-truth intervals.
	WhiteboxWindowSummary = whitebox.WindowSummary
	// VisibilityStats quantifies write staleness per observing agent.
	VisibilityStats = analysis.VisibilityStats
	// Streak is a run of consecutive anomalous tests.
	Streak = analysis.Streak
	// BlockRate is the anomaly rate within one block of a campaign's
	// timeline.
	BlockRate = analysis.BlockRate
	// StoreCluster is the replicated-log substrate (exposed for
	// white-box monitoring and ablation studies).
	StoreCluster = store.Cluster
	// StoreConfig parameterizes a replicated store.
	StoreConfig = store.Config
)

// Replication modes and read-time orderings for StoreConfig.
const (
	// StoreStrong applies writes synchronously at every replica.
	StoreStrong = store.Strong
	// StoreEventual propagates writes asynchronously.
	StoreEventual = store.Eventual
	// OrderTimestamp sorts replica logs by creation stamp.
	OrderTimestamp = store.OrderTimestamp
	// OrderArrival presents entries in local arrival order.
	OrderArrival = store.OrderArrival
	// OrderHybrid normalizes aged entries to timestamp order.
	OrderHybrid = store.OrderHybrid
)

// NewWhiteboxMonitor builds a Monitor sampling cluster every period.
func NewWhiteboxMonitor(clock Clock, cluster *StoreCluster, period time.Duration) (*WhiteboxMonitor, error) {
	return whitebox.NewMonitor(clock, cluster, period)
}

var (
	// NewStreamChecker returns an empty online anomaly detector.
	NewStreamChecker = core.NewStream
	// CompareCampaigns builds the statistical comparison between two
	// campaign reports.
	CompareCampaigns = analysis.Compare
	// VisibilityLatencies computes per-agent write-visibility latencies
	// over campaign traces.
	VisibilityLatencies = analysis.VisibilityLatencies
	// WhiteboxApplyLags returns ground-truth per-replica replication
	// lags for the given entry IDs.
	WhiteboxApplyLags = whitebox.ApplyLags
	// RotateSites shifts agent locations cyclically (the paper's
	// rotation control experiment).
	RotateSites = probe.RotateSites
	// WriteSpread measures Test 2 write simultaneity on the estimated
	// timeline.
	WriteSpread = analysis.WriteSpread
	// TrueWriteSpread measures the actual spread with ground-truth
	// skews.
	TrueWriteSpread = analysis.TrueWriteSpread
	// DetectStreaks finds runs of consecutive anomalous tests.
	DetectStreaks = analysis.DetectStreaks
	// TimeSeries reports anomaly rates per block of a campaign's
	// timeline.
	TimeSeries = analysis.TimeSeries
	// LoadProfile reads a service profile from JSON.
	LoadProfile = profilecfg.Load
	// SaveProfile writes a service profile as JSON.
	SaveProfile = profilecfg.Save
	// NewStoreCluster builds a replicated log over a network.
	NewStoreCluster = newStoreCluster
)

func newStoreCluster(clock Clock, net *Network, cfg StoreConfig, seed int64) (*StoreCluster, error) {
	return store.NewCluster(clock, net, cfg, seed)
}

// Statistical helpers for comparing measured campaigns against the
// paper's reported values.
var (
	// Mean is the arithmetic mean.
	Mean = stats.Mean
	// Percentile is the nearest-rank percentile (p in [0,100]).
	Percentile = stats.Percentile
	// WilsonCI is the Wilson score interval for a proportion.
	WilsonCI = stats.WilsonCI
	// BootstrapCI estimates a confidence interval by resampling.
	BootstrapCI = stats.BootstrapCI
	// KSDistance is the two-sample Kolmogorov-Smirnov statistic.
	KSDistance = stats.KSDistance
)

// Compile-time coherence between facade aliases and internals.
var _ vtime.Clock = (*SkewedClock)(nil)
