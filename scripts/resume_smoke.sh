#!/bin/sh
# Crash-and-resume determinism smoke: run a campaign to completion, run
# the identical campaign with -checkpoint but abort it partway through,
# resume from the journal, and require the resumed report to be
# byte-identical to the uninterrupted one. Run from the repository root
# or anywhere inside it.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

common="-service fbfeed -test1 6 -test2 6 -seed 5 -lanes 4 -parallelism 2 -json"

echo "== reference run (uninterrupted)"
go run ./cmd/conprobe $common > "$dir/reference.json"

echo "== crash drill (abort after 7 completed tests)"
if go run ./cmd/conprobe $common -checkpoint "$dir/campaign.ckpt" \
    -abort-after 7 > /dev/null 2> "$dir/abort.log"; then
  echo "resume_smoke: crash drill unexpectedly ran to completion" >&2
  cat "$dir/abort.log" >&2
  exit 1
fi
grep -q "aborted after 7" "$dir/abort.log" || {
  echo "resume_smoke: crash drill failed for the wrong reason:" >&2
  cat "$dir/abort.log" >&2
  exit 1
}

echo "== resumed run"
go run ./cmd/conprobe $common -checkpoint "$dir/campaign.ckpt" -resume \
  > "$dir/resumed.json"

echo "== diff reference vs resumed"
diff "$dir/reference.json" "$dir/resumed.json"

echo "resume_smoke: OK (resumed report is byte-identical)"
