#!/bin/sh
# Disk-chaos sweep: run the seeded storage-fault drills — every fault
# kind (torn write, fsync-gate, read bit flip, ENOSPC, dir-sync
# omission, crash-before-rename) against every durable site (op WAL,
# term WAL, snapshot, checkpoint journal) plus the byte-flip corruption
# sweeps — under the race detector, one seed at a time so a red run
# names the exact losing seed.
#
#   DISKCHAOS_SEEDS="1 2 3 4 5"   seeds to sweep (default 1..5)
#   DISKCHAOS_SEED_OUT=path       losing seed written here (CI uploads
#                                 it as an artifact; rerun locally with
#                                 DISKCHAOS_SEED=<n>)
#
# Run from the repository root or anywhere inside it.
set -eu

cd "$(dirname "$0")/.."

seeds=${DISKCHAOS_SEEDS:-"1 2 3 4 5"}
pkgs="./internal/cluster ./internal/checkpoint ./internal/wal ./internal/diskfault ./internal/store"
sweep='TestDiskFaultSweep|TestJournalFaultSweep'

# The every-offset corruption sweeps and the single-shot recovery-path
# tests are seed-independent; run them once, alongside the first seed.
once='FlipAtEveryOffset|TestFsyncPoisonNeverAcks|TestQuarantinedFollowerRejoinsViaSnapshot|TestCorruptTermLogBootsNonGranting'

first=1
for seed in $seeds; do
  run="$sweep"
  if [ "$first" = 1 ]; then
    run="$sweep|$once"
    first=0
  fi
  echo "== disk-chaos seed $seed"
  if ! DISKCHAOS_SEED="$seed" go test -race -run "$run" $pkgs; then
    echo "disk-chaos: seed $seed FAILED (rerun: DISKCHAOS_SEED=$seed go test -race -run '$run' $pkgs)" >&2
    if [ -n "${DISKCHAOS_SEED_OUT:-}" ]; then
      echo "DISKCHAOS_SEED=$seed" >> "$DISKCHAOS_SEED_OUT"
    fi
    exit 1
  fi
done

echo "disk-chaos: OK (seeds: $seeds)"
