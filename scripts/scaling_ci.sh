#!/bin/sh
# CI scaling gate: one BenchmarkCampaignParallel pass (count=1) through
# scripts/bench.sh, plus mutex and block profiles of the parallelism=8
# row for the artifact upload. On multicore hosts the 8-vs-1 median
# speedup must hold at >= 1.5x; a single-core runner cannot scale by
# construction (the campaign is CPU-bound virtual-time simulation), so
# there the gate only records the number.
set -eu

cd "$(dirname "$0")/.."

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

BENCHCOUNT="${BENCHCOUNT:-1}" ./scripts/bench.sh

# Contention profiles of the hottest row; pprof-readable artifacts.
go test -run '^$' -bench 'BenchmarkCampaignParallel/parallel=8' \
	-benchtime 1x -count 1 \
	-mutexprofile mutex.out -blockprofile block.out .

out="BENCH_$(uname -n | tr -c 'A-Za-z0-9' '_' | sed 's/_*$//').json"
speedup=$(grep -o '"speedup_p8_over_p1": [0-9.]*' "$out" | tail -1 | awk '{print $2}')
echo "scaling: cores=$cores speedup_p8_over_p1=${speedup:-n/a}"

if [ "$cores" -le 1 ]; then
	echo "scaling: single-core host; the 1.5x gate needs parallel hardware, skipping"
	exit 0
fi
if [ -z "$speedup" ]; then
	echo "scaling: FAIL: no speedup_p8_over_p1 recorded in $out" >&2
	exit 1
fi
if awk "BEGIN { exit !($speedup < 1.5) }"; then
	echo "scaling: FAIL: speedup_p8_over_p1 = $speedup < 1.5 on $cores cores" >&2
	exit 1
fi
echo "scaling: OK: speedup_p8_over_p1 = $speedup on $cores cores"
