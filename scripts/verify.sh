#!/bin/sh
# Pre-merge verification: compile every package, vet, and run the full
# test suite under the race detector. Run from the repository root or
# anywhere inside it.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== resume smoke"
./scripts/resume_smoke.sh

echo "== cluster smoke"
./scripts/cluster_smoke.sh

echo "== disk chaos (short sweep)"
DISKCHAOS_SEEDS=${DISKCHAOS_SEEDS:-"1 2"} ./scripts/disk_chaos.sh

echo "== bench: BenchmarkCampaignParallel"
./scripts/bench.sh

echo "verify: OK"
