#!/bin/sh
# Run the parallel-campaign benchmark and record its ops/sec in a
# BENCH_<host>.json snapshot at the repository root, one JSON object
# per `make verify` (or direct) invocation. Each benchmark runs
# -count=3 and the snapshot records the min and median per worker
# count, so a single noisy run cannot masquerade as a regression.
# Pass extra iterations via BENCHTIME (default 1x, i.e. one 1k-test
# campaign per worker count) and repetitions via BENCHCOUNT.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
BENCHCOUNT="${BENCHCOUNT:-3}"
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
out="BENCH_$(uname -n | tr -c 'A-Za-z0-9' '_' | sed 's/_*$//').json"

raw=$(go test -run '^$' -bench BenchmarkCampaignParallel -benchtime "$BENCHTIME" -count "$BENCHCOUNT" .)
echo "$raw"

# The metrics hot path is the observability layer's overhead budget:
# a few ns/op and zero allocations, checked here on every bench run.
hot=$(go test -run '^$' -bench 'BenchmarkMetricsHotPath$' -benchmem ./internal/obs)
echo "$hot"

# The sharded store hot path must hold its speedup over the pre-shard
# baseline (one lock stripe, no read cache); the ratio lands in the
# snapshot so a regression shows up as a falling "speedup".
storeraw=$(go test -run '^$' -bench 'BenchmarkShardedStoreHotPath' -benchtime "${STORE_BENCHTIME:-0.5s}" ./internal/store)
echo "$storeraw"

# A short closed-loop conload run against the in-process fbgroup profile
# records end-to-end service latency percentiles next to the
# microbenchmarks.
loadtmp=$(mktemp)
trap 'rm -f "$loadtmp"' EXIT
go run ./cmd/conload -inproc -service fbgroup -users 8 \
	-duration "${CONLOAD_DURATION:-2s}" -write-ratio 0.1 -api-delay 0 \
	-run-id "bench$$" -out "$loadtmp"

{
	echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v cores="$cores" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkCampaignParallel\// {
	split($1, name, /[=-]/)
	p = name[2]
	if (!(p in count)) order[np++] = p
	i = count[p]++
	ns[p, i] = $3
	tps[p, i] = $5
}
function med(arr, p, n,    a, b, c) {
	# median of up to three repetitions (n==1 and n==2 degrade sanely)
	a = arr[p, 0]; b = arr[p, 1]; c = arr[p, 2]
	if (n == 1) return a
	if (n == 2) return (a < b) ? b : a
	if ((a <= b && b <= c) || (c <= b && b <= a)) return b
	if ((b <= a && a <= c) || (c <= a && a <= b)) return a
	return c
}
function mini(arr, p, n,    m, i) {
	m = arr[p, 0]
	for (i = 1; i < n; i++) if (arr[p, i] < m) m = arr[p, i]
	return m
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkCampaignParallel\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"count\": %d,\n", count[order[0]]
	printf "  \"results\": [\n"
	for (j = 0; j < np; j++) {
		p = order[j]
		n = count[p]
		printf "    {\"parallelism\": %d, \"ns_per_op_min\": %d, \"ns_per_op_median\": %d, \"tests_per_sec_min\": %d, \"tests_per_sec_median\": %d}%s\n", \
			p, mini(ns, p, n), med(ns, p, n), mini(tps, p, n), med(tps, p, n), (j < np - 1) ? "," : ""
	}
	printf "  ],\n"
	printf "  \"cores\": %d,\n", cores
	# Scaling headline: median tests/sec at 8 workers over 1 worker. On
	# a single-core host this hovers near 1.0 by construction — the
	# campaign is CPU-bound virtual-time simulation — so record the core
	# count next to it and let the consumer judge.
	p1 = med(tps, "1", count["1"]) + 0
	p8 = med(tps, "8", count["8"]) + 0
	if (p1 > 0 && p8 > 0)
		printf "  \"speedup_p8_over_p1\": %.2f,\n", p8 / p1
	else
		printf "  \"speedup_p8_over_p1\": null,\n"
}'
	echo "$hot" | awk '
/^BenchmarkMetricsHotPath[- \t]/ {
	printf "  \"metrics_hot_path\": {\"ns_per_op\": %s, \"allocs_per_op\": %d},\n", $3, $7
	found = 1
	exit
}
END {
	if (!found) printf "  \"metrics_hot_path\": null,\n"
}'
	echo "$storeraw" | awk '
/^BenchmarkShardedStoreHotPath\/baseline/ { base = $3 }
/^BenchmarkShardedStoreHotPath\/sharded/  { shard = $3 }
END {
	if (base > 0 && shard > 0)
		printf "  \"store_hot_path\": {\"baseline_ns_per_op\": %d, \"sharded_ns_per_op\": %d, \"speedup\": %.2f},\n", base, shard, base / shard
	else
		printf "  \"store_hot_path\": null,\n"
}'
	printf '  "conload": '
	cat "$loadtmp"
	printf '}\n'
} >>"$out"

echo "bench: appended data point to $out" >&2

speedup=$(grep -o '"speedup_p8_over_p1": [0-9.]*' "$out" | tail -1 | awk '{print $2}')
if [ -n "$speedup" ] && awk "BEGIN { exit !($speedup < 2) }"; then
	echo "bench: WARNING: speedup_p8_over_p1 = $speedup (< 2x) on $cores core(s)" >&2
	if [ "$cores" -le 1 ]; then
		echo "bench: note: single-core host; parallel speedup is not expected here" >&2
	fi
fi
