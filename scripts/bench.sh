#!/bin/sh
# Run the parallel-campaign benchmark and record its ops/sec in a
# BENCH_<host>.json snapshot at the repository root, one JSON object
# per `make verify` (or direct) invocation. Pass extra iterations via
# BENCHTIME (default 1x, i.e. one 1k-test campaign per worker count).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
out="BENCH_$(uname -n | tr -c 'A-Za-z0-9' '_' | sed 's/_*$//').json"

raw=$(go test -run '^$' -bench BenchmarkCampaignParallel -benchtime "$BENCHTIME" .)
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkCampaignParallel\// {
	split($1, name, /[=-]/)
	if (n++) rows = rows ",\n"
	rows = rows sprintf("    {\"parallelism\": %d, \"ns_per_op\": %s, \"tests_per_sec\": %s}",
		name[2], $3, $5)
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkCampaignParallel\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"results\": [\n%s\n  ]\n", rows
	printf "}\n"
}' >>"$out"

echo "bench: appended data point to $out" >&2
