#!/bin/sh
# Cluster replication smoke: boot a leader and two followers on
# localhost, write through the leader, require both followers to catch
# up and to redirect writes with 421 + X-Cluster-Leader, then kill -9
# the leader and require it to recover its op log from WAL+snapshot and
# keep replicating. Run from the repository root or anywhere inside it.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
leader_pid=""
follower_pids=""
cleanup() {
  for p in $leader_pid $follower_pids; do
    kill "$p" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

die() {
  echo "cluster_smoke: $*" >&2
  for n in n1 n2 n3; do
    if [ -s "$dir/$n.log" ]; then
      echo "---- $n.log" >&2
      cat "$dir/$n.log" >&2
    fi
  done
  exit 1
}

# Ports from the PID keep parallel runs on one host from colliding.
base=$((20000 + $$ % 10000))
lp=$base
f2p=$((base + 1))
f3p=$((base + 2))
L="http://127.0.0.1:$lp"
F2="http://127.0.0.1:$f2p"
F3="http://127.0.0.1:$f3p"

echo "== build consvc"
go build -o "$dir/consvc" ./cmd/consvc

start_leader() {
  "$dir/consvc" -service blogger -rate 0 -role leader -node-id n1 \
    -data-dir "$dir/n1" -addr "127.0.0.1:$lp" >>"$dir/n1.log" 2>&1 &
  leader_pid=$!
}

start_follower() { # name port
  "$dir/consvc" -service blogger -rate 0 -role follower -node-id "$1" \
    -leader-url "$L" -pull-interval 100ms -data-dir "$dir/$1" \
    -addr "127.0.0.1:$2" >>"$dir/$1.log" 2>&1 &
  follower_pids="$follower_pids $!"
}

wait_ready() { # url name
  i=0
  while ! curl -fsS "$1/time" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || die "$2 never became ready at $1"
    sleep 0.2
  done
}

last_index() { # url
  curl -fsS "$1/cluster/status" | sed -n 's/.*"last_index":\([0-9]*\).*/\1/p'
}

wait_caught_up() { # url name want
  i=0
  while [ "$(last_index "$1")" != "$3" ]; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || die "$2 stuck at index $(last_index "$1"), want $3"
    sleep 0.2
  done
}

write_post() { # id body
  curl -fsS -o /dev/null -H 'X-Client-Site: oregon' \
    -H 'Content-Type: application/json' \
    -d "{\"id\":\"$1\",\"author\":\"smoke\",\"body\":\"$2\"}" "$L/posts" ||
    die "write $1 through the leader failed"
}

echo "== boot leader + 2 followers"
start_leader
start_follower n2 "$f2p"
start_follower n3 "$f3p"
wait_ready "$L" n1
wait_ready "$F2" n2
wait_ready "$F3" n3

echo "== write 5 posts through the leader"
for i in 1 2 3 4 5; do
  write_post "p$i" "payload $i"
done

want=$(last_index "$L")
[ -n "$want" ] && [ "$want" -ge 5 ] || die "leader last_index=$want after 5 writes"

echo "== followers catch up to index $want"
wait_caught_up "$F2" n2 "$want"
wait_caught_up "$F3" n3 "$want"
curl -fsS -H 'X-Client-Site: tokyo' "$F2/posts?reader=smoke" |
  grep -q '"id":"p5"' || die "n2 replica is missing p5"
followers=$(curl -fsS "$L/cluster/status" | grep -o '"node"' | wc -l)
[ "$followers" -eq 2 ] || die "leader tracks $followers followers, want 2"

echo "== follower redirects writes to the leader"
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Client-Site: oregon' \
  -H 'Content-Type: application/json' \
  -d '{"id":"px","author":"smoke","body":"misdirected"}' "$F2/posts")
[ "$code" = "421" ] || die "follower answered a write with $code, want 421"
curl -s -D - -o /dev/null -H 'X-Client-Site: oregon' \
  -H 'Content-Type: application/json' \
  -d '{"id":"px","author":"smoke","body":"misdirected"}' "$F2/posts" |
  grep -qi "^X-Cluster-Leader: $L" || die "421 lacks the X-Cluster-Leader hint"

echo "== kill -9 the leader, restart it from its WAL"
kill -9 "$leader_pid"
wait "$leader_pid" 2>/dev/null || true
start_leader
wait_ready "$L" n1
recovered=$(last_index "$L")
[ "$recovered" = "$want" ] || die "leader recovered at index $recovered, want $want"

echo "== replication heals: write once more, followers follow"
write_post p6 "after restart"
wait_caught_up "$F2" n2 "$((want + 1))"
wait_caught_up "$F3" n3 "$((want + 1))"
curl -fsS -H 'X-Client-Site: tokyo' "$F3/posts?reader=smoke" |
  grep -q '"id":"p6"' || die "n3 replica is missing the post-restart write"

echo "cluster_smoke: OK (catch-up, redirects, and leader crash recovery)"
