#!/bin/sh
# Cluster failover smoke: boot three consvc peers with NO designated
# leader, let them elect one, write through it (quorum-acked), require
# the followers to converge and to redirect writes with 421 +
# X-Cluster-Leader, then kill -9 the leader and require the survivors
# to elect a replacement on their own that still holds every acked
# write. The crashed node restarts from its WAL and rejoins as a
# follower. No operator action anywhere — there is no promote call.
#
# The second act drills joint-consensus reconfiguration and the
# linearizable read path: grow the cluster 3→5 with consvc -join
# (kill -9 the leader inside the joint phase of the second add), check
# lease/quorum reads at the leader and the 421 refusal off it, then
# shrink back to 3 and keep writing.
# Run from the repository root or anywhere inside it.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
  for n in n1 n2 n3 n4 n5; do
    if [ -s "$dir/$n.pid" ]; then
      kill -9 "$(cat "$dir/$n.pid")" 2>/dev/null || true
    fi
  done
  wait 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

die() {
  echo "cluster_smoke: $*" >&2
  for n in n1 n2 n3 n4 n5; do
    if [ -s "$dir/$n.log" ]; then
      echo "---- $n.log" >&2
      cat "$dir/$n.log" >&2
    fi
  done
  exit 1
}

# poll_until seconds what cmd [args...]: rerun cmd until it succeeds or
# the deadline passes, then die. Every wait in this script goes through
# here — a fixed sleep is either too short (flaky) or too long (slow),
# a deadline poll is neither.
poll_until() {
  _deadline=$(($(date +%s) + $1))
  _what=$2
  shift 2
  until "$@" >/dev/null 2>&1; do
    [ "$(date +%s)" -lt "$_deadline" ] || die "timed out waiting for $_what"
    sleep 0.2
  done
}

# Ports from the PID keep parallel runs on one host from colliding.
base=$((20000 + $$ % 10000))
U1="http://127.0.0.1:$base"
U2="http://127.0.0.1:$((base + 1))"
U3="http://127.0.0.1:$((base + 2))"
U4="http://127.0.0.1:$((base + 3))"
U5="http://127.0.0.1:$((base + 4))"

url_of() { # name
  case $1 in
  n1) echo "$U1" ;;
  n2) echo "$U2" ;;
  n3) echo "$U3" ;;
  n4) echo "$U4" ;;
  n5) echo "$U5" ;;
  esac
}

echo "== build consvc"
go build -o "$dir/consvc" ./cmd/consvc

start_node() { # name
  _u=$(url_of "$1")
  _peers=""
  for _n in n1 n2 n3; do
    [ "$_n" = "$1" ] && continue
    _peers="$_peers,$(url_of "$_n")"
  done
  # -election-timeout must clear the service's worst-case write-apply
  # time: ops apply under the node lock and a blogger write pays ~1s of
  # simulated network delay there, stalling heartbeats behind it.
  "$dir/consvc" -service blogger -rate 0 -jitter 0 -node-id "$1" \
    -addr "${_u#http://}" -self-url "$_u" -peers "${_peers#,}" \
    -data-dir "$dir/$1" -pull-interval 100ms -election-timeout 2s \
    -heartbeat-interval 200ms -snapshot-every 4 -read-mode lease \
    >>"$dir/$1.log" 2>&1 &
  echo $! >"$dir/$1.pid"
}

# start_join name target: boot a node with no -peers that asks the
# cluster at target to vote it into the membership (consvc -join).
start_join() {
  _u=$(url_of "$1")
  "$dir/consvc" -service blogger -rate 0 -jitter 0 -node-id "$1" \
    -addr "${_u#http://}" -self-url "$_u" -join "$2" \
    -data-dir "$dir/$1" -pull-interval 100ms -election-timeout 2s \
    -heartbeat-interval 200ms -snapshot-every 4 -read-mode lease \
    >>"$dir/$1.log" 2>&1 &
  echo $! >"$dir/$1.pid"
}

status_field() { # url field
  curl -fsS "$1/cluster/status" 2>/dev/null |
    sed -n "s/.*\"$2\":\"\{0,1\}\([a-z0-9_.:/-]*\)\"\{0,1\}[,}].*/\1/p"
}

healthy() { curl -fsS "$1/time" >/dev/null 2>&1; }

# find_leader url...: sets LEADER to the member currently claiming
# leadership; fails when nobody does (mid-election).
find_leader() {
  for _u in "$@"; do
    if [ "$(status_field "$_u" role)" = "leader" ]; then
      LEADER=$_u
      return 0
    fi
  done
  return 1
}

has_post() { # url id
  curl -fsS -H 'X-Client-Site: tokyo' "$1/posts?reader=smoke" 2>/dev/null |
    grep -q "\"id\":\"$2\""
}

# attempt_write id: one write attempt through the current leader. A
# failed attempt whose op actually committed (the honest "unknown
# outcome" of a quorum write) is detected by reading the id back, so
# the poll_until retry stays idempotent.
attempt_write() {
  find_leader $live || return 1
  curl -fsS -o /dev/null -H 'X-Client-Site: oregon' \
    -H 'Content-Type: application/json' \
    -d "{\"id\":\"$1\",\"author\":\"smoke\",\"body\":\"$1\"}" \
    "$LEADER/posts" && return 0
  has_post "$LEADER" "$1"
}

write_acked() { # id
  poll_until 30 "write $1 to be quorum-acked" attempt_write "$1"
}

echo "== boot three peers, nobody told to lead"
start_node n1
start_node n2
start_node n3
for n in n1 n2 n3; do
  poll_until 20 "$n to come up" healthy "$(url_of "$n")"
done

echo "== cluster elects a leader on its own"
live="$U1 $U2 $U3"
poll_until 30 "a leader to be elected" find_leader $live
leader=$LEADER
term=$(status_field "$leader" term)
[ -n "$term" ] && [ "$term" -ge 1 ] || die "elected leader reports term '$term'"
echo "   leader: $leader (term $term)"

echo "== write 5 posts through the elected leader"
for i in 1 2 3 4 5; do
  write_acked "p$i"
done

echo "== followers converge"
for u in $live; do
  [ "$u" = "$leader" ] && continue
  poll_until 30 "replica at $u to hold p5" has_post "$u" p5
done

echo "== follower redirects writes with 421 + leader hint"
for u in $live; do
  [ "$u" = "$leader" ] && continue
  follower=$u
  break
done
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Client-Site: oregon' \
  -H 'Content-Type: application/json' \
  -d '{"id":"px","author":"smoke","body":"misdirected"}' "$follower/posts")
[ "$code" = "421" ] || die "follower answered a write with $code, want 421"
curl -s -D - -o /dev/null -H 'X-Client-Site: oregon' \
  -H 'Content-Type: application/json' \
  -d '{"id":"px","author":"smoke","body":"misdirected"}' "$follower/posts" |
  grep -qi "^X-Cluster-Leader: $leader" || die "421 lacks the X-Cluster-Leader hint"

echo "== kill -9 the leader; survivors elect a replacement unaided"
for n in n1 n2 n3; do
  if [ "$(url_of "$n")" = "$leader" ]; then
    dead=$n
    kill -9 "$(cat "$dir/$n.pid")"
    wait "$(cat "$dir/$n.pid")" 2>/dev/null || true
    : >"$dir/$n.pid"
  fi
done
live=""
for n in n1 n2 n3; do
  [ "$n" = "$dead" ] || live="$live $(url_of "$n")"
done
poll_until 30 "the survivors to elect a new leader" find_leader $live
new_leader=$LEADER
[ "$new_leader" != "$leader" ] || die "dead node still reported as leader"
new_term=$(status_field "$new_leader" term)
[ "$new_term" -gt "$term" ] || die "new leader term $new_term not above $term"
echo "   new leader: $new_leader (term $new_term)"

echo "== zero acked-write loss across the failover"
for i in 1 2 3 4 5; do
  has_post "$new_leader" "p$i" || die "acked write p$i lost in failover"
done

echo "== the stream continues under the new leader"
for i in 6 7 8; do
  write_acked "p$i"
done

echo "== crashed node restarts from its WAL and rejoins"
start_node "$dead"
poll_until 20 "$dead to come up" healthy "$(url_of "$dead")"
live="$U1 $U2 $U3"
poll_until 30 "rejoined $dead to catch up to p8" has_post "$(url_of "$dead")" p8
for i in 1 2 3 4 5 6 7 8; do
  has_post "$(url_of "$dead")" "p$i" || die "rejoined replica is missing p$i"
done
role=$(status_field "$(url_of "$dead")" role)
[ "$role" = "follower" ] || die "rejoined node role=$role, want follower"

# config_settled count: the current leader reports the target member
# count with no joint phase in flight.
config_settled() {
  find_leader $live || return 1
  [ "$(status_field "$LEADER" members)" = "$1" ] &&
    [ "$(status_field "$LEADER" joint)" = "false" ]
}

echo "== grow to four: n4 joins via -join, no flag edits on the members"
find_leader $live
start_join n4 "$LEADER"
poll_until 20 "n4 to come up" healthy "$U4"
poll_until 60 "the config to settle at 4 members" config_settled 4
live="$live $U4"

echo "== n5 joins; kill -9 the leader inside the joint phase"
find_leader $live
victim=$LEADER
# n5 asks a non-leader member so its join retries survive the kill.
for u in $live; do
  [ "$u" = "$victim" ] && continue
  join_at=$u
  break
done
start_join n5 "$join_at"
poll_until 20 "n5 to come up" healthy "$U5"
# Tight-poll the leader for the C(old,new) phase and kill it the moment
# the phase is visible. The window is only a few heartbeats wide; if it
# settles before a poll lands in it, kill the leader anyway — recovery
# must never regress the config in either case.
caught="joint window missed"
grow_deadline=$(($(date +%s) + 60))
while :; do
  if [ "$(status_field "$victim" joint)" = "true" ]; then
    caught="killed mid-joint"
    break
  fi
  [ "$(status_field "$victim" members)" = "5" ] && break
  [ "$(date +%s)" -lt "$grow_deadline" ] || die "n5's reconfiguration never started"
done
for n in n1 n2 n3 n4; do
  if [ "$(url_of "$n")" = "$victim" ]; then
    vname=$n
    kill -9 "$(cat "$dir/$n.pid")"
    wait "$(cat "$dir/$n.pid")" 2>/dev/null || true
    : >"$dir/$n.pid"
  fi
done
echo "   $caught: $victim"
live=""
for n in n1 n2 n3 n4 n5; do
  [ "$(url_of "$n")" = "$victim" ] || live="$live $(url_of "$n")"
done
# Restart the victim: it recovers the (possibly joint) config from its
# WAL and must rejoin without regressing the membership.
start_node "$vname"
poll_until 20 "$vname to restart" healthy "$victim"
live="$U1 $U2 $U3 $U4 $U5"
poll_until 60 "the 5-member config to settle across the kill" config_settled 5

echo "== quorum writes span the grown membership"
write_acked p9
write_acked p10
for n in n4 n5; do
  poll_until 30 "$n to hold p10" has_post "$(url_of "$n")" p10
done

echo "== linearizable reads: lease at the leader, quorum round, 421 off-leader"
# -read-mode lease is the default for /cluster/read on every node.
lease_read_ok() {
  find_leader $live || return 1
  curl -fsS -D "$dir/read.hdr" -o "$dir/read.body" \
    -H 'X-Client-Site: tokyo' "$LEADER/cluster/read?reader=smoke" &&
    grep -qi '^x-read-mode: lease' "$dir/read.hdr" &&
    grep -q '"id":"p10"' "$dir/read.body"
}
poll_until 30 "a lease-vouched read of p10 at the leader" lease_read_ok
quorum_read_ok() {
  find_leader $live || return 1
  curl -fsS -H 'X-Client-Site: tokyo' \
    "$LEADER/cluster/read?mode=quorum&reader=smoke" | grep -q '"id":"p10"'
}
poll_until 30 "a quorum-vouched read of p10 at the leader" quorum_read_ok
find_leader $live
for u in $live; do
  [ "$u" = "$LEADER" ] && continue
  follower=$u
  break
done
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Client-Site: tokyo' \
  "$follower/cluster/read?mode=lease&reader=smoke")
[ "$code" = "421" ] || die "follower answered a lease read with $code, want 421"
curl -fsS -H 'X-Client-Site: tokyo' \
  "$follower/cluster/read?mode=local&reader=smoke" | grep -q '"id":"p10"' ||
  die "local-mode read at a follower did not serve the replica"

echo "== shrink back to three: remove n4 and n5 under joint consensus"
attempt_shrink() {
  config_settled 3 && return 0
  find_leader $live || return 1
  curl -fsS -o /dev/null -H 'Content-Type: application/json' \
    -d "{\"remove\":[\"$U4\",\"$U5\"]}" "$LEADER/cluster/reconfigure"
  config_settled 3
}
poll_until 60 "the config to shrink to 3" attempt_shrink
for n in n4 n5; do
  kill -9 "$(cat "$dir/$n.pid")"
  wait "$(cat "$dir/$n.pid")" 2>/dev/null || true
  : >"$dir/$n.pid"
done

echo "== the shrunken cluster still commits writes"
live="$U1 $U2 $U3"
write_acked p11
for i in 1 2 3 4 5 6 7 8 9 10 11; do
  has_post "$LEADER" "p$i" || die "write p$i lost across the 3-5-3 reconfiguration"
done

echo "cluster_smoke: OK (automatic election, quorum writes, kill -9 failover, rejoin, 3-5-3 reconfigure with mid-joint kill, lease/quorum reads)"
